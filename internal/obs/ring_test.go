package obs

import (
	"sync"
	"testing"
)

// TestRingPublishDrain: the single-threaded contract — FIFO order, seq
// tickets, arg round-trip, nothing dropped while the ring is not full.
func TestRingPublishDrain(t *testing.T) {
	r := NewRing(8)
	r.Publish(KindEpochAdvance, 3, 7)
	r.Publish(KindResizeGrow, -1, 1, 2, 10, 20, 30, 40, 50, 60)
	evs := r.Drain()
	if len(evs) != 2 {
		t.Fatalf("Drain returned %d events, want 2", len(evs))
	}
	if evs[0].Kind != KindEpochAdvance || evs[0].Shard != 3 || evs[0].Args[0] != 7 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != KindResizeGrow || evs[1].Shard != -1 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	want := [EventArgs]int64{1, 2, 10, 20, 30, 40, 50, 60}
	if evs[1].Args != want {
		t.Fatalf("event 1 args = %v, want %v", evs[1].Args, want)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("seqs = %d,%d, want 0,1", evs[0].Seq, evs[1].Seq)
	}
	if got := r.Drain(); len(got) != 0 {
		t.Fatalf("second Drain returned %d events, want 0", len(got))
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

// TestRingOverwrite: a full ring drops the OLDEST events, keeps the
// newest, and accounts every loss.
func TestRingOverwrite(t *testing.T) {
	r := NewRing(4)
	for i := int64(0); i < 10; i++ {
		r.Publish(KindEpochAdvance, 0, i)
	}
	evs := r.Drain()
	if len(evs) != 4 {
		t.Fatalf("Drain returned %d events, want 4 (ring capacity)", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Args[0] != want {
			t.Fatalf("event %d carries arg %d, want %d (newest must survive)", i, e.Args[0], want)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
}

// TestRingNilSafe: a nil ring is the stripped configuration — every
// method is a no-op, not a panic.
func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Publish(KindSealAssist, 0, 1)
	if r.Drain() != nil || r.Dropped() != 0 || r.Cap() != 0 {
		t.Fatal("nil ring methods must return zero values")
	}
}

// TestRingStress: the -race stress of the seqlock protocol — concurrent
// writers lapping a small ring while a reader drains. Three invariants:
//
//  1. accounting: drained + dropped == published (no lost update on the
//     sequence word — every ticket is surfaced exactly once, as an event
//     or as a drop);
//  2. integrity: no torn payload survives validation (each event carries
//     a writer/value/checksum triple that must be internally consistent);
//  3. order: drained events arrive in strictly increasing Seq order.
func TestRingStress(t *testing.T) {
	const (
		writers = 8
		perW    = 20000
	)
	r := NewRing(64) // small: force heavy wraparound and lapping
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var drained int64
	var lastSeq int64 = -1
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		check := func(evs []Event) {
			for _, e := range evs {
				if int64(e.Seq) <= lastSeq {
					t.Errorf("seq %d not above previous %d", e.Seq, lastSeq)
				}
				lastSeq = int64(e.Seq)
				if e.Args[0]^e.Args[1] != e.Args[2] {
					t.Errorf("torn event survived validation: %+v", e)
				}
				drained++
			}
		}
		for {
			select {
			case <-stop:
				check(r.Drain()) // final sweep at quiescence
				return
			default:
				check(r.Drain())
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perW; i++ {
				r.Publish(KindCombinerElect, int32(id), id, i, id^i)
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	<-readerDone

	const published = writers * perW
	if total := drained + r.Dropped(); total != published {
		t.Fatalf("drained %d + dropped %d = %d, want %d published",
			drained, r.Dropped(), total, published)
	}
	if drained == 0 {
		t.Fatal("reader drained nothing — the ring never surfaced an event")
	}
}

// TestRingQuiescentDrainLosesNothing: with no writer in flight, a drain
// must surface every undrained event the ring still holds — in-progress
// accounting must not leak drops at quiescence.
func TestRingQuiescentDrainLosesNothing(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < 3; i++ {
				r.Publish(KindSealAssist, int32(id), i)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := len(r.Drain()); got != 12 {
		t.Fatalf("quiescent drain returned %d events, want 12", got)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 (ring never filled)", r.Dropped())
	}
}
