package alist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/unode"
)

func ins(key int64) *unode.UpdateNode { return unode.NewIns(key) }

func TestEmptyList(t *testing.T) {
	for _, desc := range []bool{false, true} {
		l := New(desc)
		if got := l.Len(); got != 0 {
			t.Errorf("descending=%v: Len() = %d, want 0", desc, got)
		}
		if l.Head().Next().Upd != nil {
			t.Errorf("descending=%v: head.Next() should be tail sentinel", desc)
		}
	}
}

func TestInsertAscendingOrder(t *testing.T) {
	l := New(false)
	for _, k := range []int64{5, 1, 9, 3, 7} {
		l.Insert(ins(k), nil)
	}
	want := []int64{1, 3, 5, 7, 9}
	got := l.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestInsertDescendingOrder(t *testing.T) {
	l := New(true)
	for _, k := range []int64{5, 1, 9, 3, 7} {
		l.Insert(ins(k), nil)
	}
	want := []int64{9, 7, 5, 3, 1}
	got := l.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

// TestDuplicateKeysFIFO: the paper requires an update node to be added
// "after every update node with the same key" in both lists.
func TestDuplicateKeysFIFO(t *testing.T) {
	for _, desc := range []bool{false, true} {
		l := New(desc)
		first, second, third := ins(4), ins(4), ins(4)
		l.Insert(first, nil)
		l.Insert(second, nil)
		l.Insert(third, nil)
		var got []*unode.UpdateNode
		for c := l.Head().Next(); c != nil && c.Upd != nil; c = c.Next() {
			got = append(got, c.Upd)
		}
		if len(got) != 3 || got[0] != first || got[1] != second || got[2] != third {
			t.Errorf("descending=%v: duplicate order not FIFO", desc)
		}
	}
}

func TestRemove(t *testing.T) {
	l := New(false)
	a, b, c := ins(1), ins(2), ins(3)
	l.Insert(a, nil)
	l.Insert(b, nil)
	l.Insert(c, nil)
	if n := l.Remove(b, nil); n != 1 {
		t.Fatalf("Remove(b) = %d, want 1", n)
	}
	if l.Contains(b) {
		t.Fatal("b still present after Remove")
	}
	got := l.Keys()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Keys() = %v, want [1 3]", got)
	}
	if n := l.Remove(b, nil); n != 0 {
		t.Fatalf("second Remove(b) = %d, want 0", n)
	}
}

// TestRemoveAllDuplicates: Remove must unlink every cell for the node,
// which is what the owner does after helpers re-inserted it.
func TestRemoveAllDuplicates(t *testing.T) {
	l := New(false)
	u := ins(5)
	l.Insert(u, nil)
	l.Insert(u, nil)
	l.Insert(u, nil)
	if n := l.Remove(u, nil); n != 3 {
		t.Fatalf("Remove = %d, want 3", n)
	}
	if l.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", l.Len())
	}
}

func TestReinsertAfterRemove(t *testing.T) {
	l := New(false)
	u := ins(6)
	l.Insert(u, nil)
	l.Remove(u, nil)
	l.Insert(u, nil) // helper re-inserts: must get a fresh cell, list stays valid
	if !l.Contains(u) {
		t.Fatal("node absent after re-insert")
	}
	if n := l.Remove(u, nil); n != 1 {
		t.Fatalf("Remove after re-insert = %d, want 1", n)
	}
}

// TestQuickSortedness: arbitrary insert sequences yield a sorted list with
// all inserted keys present.
func TestQuickSortedness(t *testing.T) {
	f := func(keys []int16, desc bool) bool {
		l := New(desc)
		for _, k := range keys {
			l.Insert(ins(int64(k)), nil)
		}
		got := l.Keys()
		if len(got) != len(keys) {
			return false
		}
		want := make([]int64, len(keys))
		for i, k := range keys {
			want[i] = int64(k)
		}
		sort.Slice(want, func(i, j int) bool {
			if desc {
				return want[i] > want[j]
			}
			return want[i] < want[j]
		})
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentInsertRemove hammers the list from multiple goroutines and
// checks the final state matches the surviving set, list stays sorted, and
// no node is lost.
func TestConcurrentInsertRemove(t *testing.T) {
	for _, desc := range []bool{false, true} {
		l := New(desc)
		const goroutines = 8
		const perG = 300
		var wg sync.WaitGroup
		keep := make([][]*unode.UpdateNode, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(id + 1)))
				for i := 0; i < perG; i++ {
					u := ins(int64(rng.Intn(64)))
					l.Insert(u, nil)
					if rng.Intn(2) == 0 {
						l.Remove(u, nil)
					} else {
						keep[id] = append(keep[id], u)
					}
				}
			}(g)
		}
		wg.Wait()

		var wantCount int
		for _, ks := range keep {
			for _, u := range ks {
				if !l.Contains(u) {
					t.Fatalf("descending=%v: surviving node %v missing", desc, u)
				}
				wantCount++
			}
		}
		if got := l.Len(); got != wantCount {
			t.Fatalf("descending=%v: Len() = %d, want %d", desc, got, wantCount)
		}
		keys := l.Keys()
		for i := 1; i < len(keys); i++ {
			inOrder := keys[i-1] <= keys[i]
			if desc {
				inOrder = keys[i-1] >= keys[i]
			}
			if !inOrder {
				t.Fatalf("descending=%v: keys out of order: %v", desc, keys)
			}
		}
	}
}

// TestConcurrentRemoveSameNode: concurrent removers of one node remove it
// exactly once in total.
func TestConcurrentRemoveSameNode(t *testing.T) {
	l := New(false)
	u := ins(9)
	l.Insert(u, nil)
	const removers = 8
	var wg sync.WaitGroup
	total := make([]int, removers)
	start := make(chan struct{})
	for r := 0; r < removers; r++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			<-start
			total[idx] = l.Remove(u, nil)
		}(r)
	}
	close(start)
	wg.Wait()
	sum := 0
	for _, n := range total {
		sum += n
	}
	if sum != 1 {
		t.Fatalf("total removals = %d, want 1", sum)
	}
	if l.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", l.Len())
	}
}

// TestTraversalThroughMarkedCells: a traverser standing on a removed cell
// can still reach the rest of the list (the paper's RU-ALL traversal relies
// on this).
func TestTraversalThroughMarkedCells(t *testing.T) {
	l := New(false)
	a, b, c := ins(1), ins(2), ins(3)
	l.Insert(a, nil)
	cellB := l.Insert(b, nil)
	l.Insert(c, nil)
	l.Remove(b, nil)
	if !cellB.Marked() {
		t.Fatal("cell b should be marked")
	}
	// From the marked cell we must still reach c and then the tail.
	n := cellB.Next()
	if n == nil || n.Key != 3 {
		t.Fatalf("marked cell successor = %v, want key 3", n)
	}
}

// --- batched runs (combining layer) -----------------------------------------

func TestInsertRunOrderAndContent(t *testing.T) {
	for _, desc := range []bool{false, true} {
		l := New(desc)
		// Interleave singles and a run; keys of the run must land sorted
		// among existing cells.
		l.Insert(ins(4), nil)
		l.Insert(ins(12), nil)
		run := []*unode.UpdateNode{ins(2), ins(6), ins(10), ins(14)}
		if desc {
			for i, j := 0, len(run)-1; i < j; i, j = i+1, j-1 {
				run[i], run[j] = run[j], run[i]
			}
		}
		l.InsertRun(run, nil)
		got := l.Keys()
		want := []int64{2, 4, 6, 10, 12, 14}
		if desc {
			want = []int64{14, 12, 10, 6, 4, 2}
		}
		if len(got) != len(want) {
			t.Fatalf("descending=%v: Keys() = %v, want %v", desc, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("descending=%v: Keys() = %v, want %v", desc, got, want)
			}
		}
		for _, u := range run {
			if !l.Contains(u) {
				t.Fatalf("descending=%v: run node %v not linked", desc, u)
			}
		}
	}
}

func TestInsertRunEqualKeysAfterExisting(t *testing.T) {
	l := New(false)
	first := ins(5)
	l.Insert(first, nil)
	second := ins(5)
	l.InsertRun([]*unode.UpdateNode{ins(3), second, ins(7)}, nil)
	// The run's key-5 cell must sit after the pre-existing key-5 cell.
	cur := l.Head().Next()
	var at5 []*unode.UpdateNode
	for ; cur != nil && cur != l.tail; cur = cur.Next() {
		if cur.Key == 5 {
			at5 = append(at5, cur.Upd)
		}
	}
	if len(at5) != 2 || at5[0] != first || at5[1] != second {
		t.Fatalf("equal-key order violated: %v", at5)
	}
}

func TestRemoveRunDrainsBatch(t *testing.T) {
	for _, desc := range []bool{false, true} {
		l := New(desc)
		keep := ins(8)
		l.Insert(keep, nil)
		run := []*unode.UpdateNode{ins(1), ins(8), ins(15)}
		if desc {
			run[0], run[2] = run[2], run[0]
		}
		l.InsertRun(run, nil)
		l.RemoveRun(run, nil)
		if got := l.Len(); got != 1 {
			t.Fatalf("descending=%v: Len() = %d after RemoveRun, want 1", desc, got)
		}
		if !l.Contains(keep) {
			t.Fatalf("descending=%v: RemoveRun removed an unrelated node", desc)
		}
		for _, u := range run {
			if l.Contains(u) {
				t.Fatalf("descending=%v: node %v survived RemoveRun", desc, u)
			}
		}
	}
}

func TestRemoveRunRemovesHelperDuplicates(t *testing.T) {
	l := New(false)
	u := ins(6)
	l.Insert(u, nil)
	l.Insert(u, nil) // helper re-insertion: duplicate cell for the same node
	l.RemoveRun([]*unode.UpdateNode{u}, nil)
	if l.Contains(u) {
		t.Fatal("duplicate cell survived RemoveRun")
	}
	if got := l.Len(); got != 0 {
		t.Fatalf("Len() = %d, want 0", got)
	}
}

// TestConcurrentRunsAndSingles hammers InsertRun/RemoveRun against
// single-cell Insert/Remove traffic and checks quiescent content.
func TestConcurrentRunsAndSingles(t *testing.T) {
	for _, desc := range []bool{false, true} {
		l := New(desc)
		const goroutines = 8
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(id)))
				base := int64(id) * 1000
				for iter := 0; iter < 200; iter++ {
					if id%2 == 0 {
						// Batched path: run of 4 disjoint keys.
						run := make([]*unode.UpdateNode, 4)
						for i := range run {
							run[i] = ins(base + int64(i)*10 + rng.Int63n(10))
						}
						sort.Slice(run, func(a, b int) bool {
							if desc {
								return run[a].Key > run[b].Key
							}
							return run[a].Key < run[b].Key
						})
						l.InsertRun(run, nil)
						l.RemoveRun(run, nil)
					} else {
						u := ins(base + rng.Int63n(40))
						l.Insert(u, nil)
						l.Remove(u, nil)
					}
				}
			}(g)
		}
		wg.Wait()
		if got := l.Len(); got != 0 {
			t.Fatalf("descending=%v: Len() = %d after drain, want 0", desc, got)
		}
	}
}
