// Pos is the single-writer multi-reader atomic-copy slot the paper's RU-ALL
// traversal publishes its position through (§5.2: "Each time pOp reads a
// pointer to the next node in the RU-ALL, pOp atomically copies this pointer
// into pNode.RuallPosition"). It implements the same copy-descriptor helping
// protocol as the generic internal/atomicx.Slot — that package remains the
// documented reference implementation — but specialized to *Cell so the hot
// path allocates one descriptor per copy instead of three objects:
//
//   - the source is stored as a plain *Cell field instead of a read closure
//     (a method value would allocate per step);
//   - resolved cells are interned: every Cell carries its own immutable
//     posCell{val: itself}, installed by whichever process wins the resolve
//     CAS. Interning is safe because resolved cells are only ever the NEW
//     value of a CAS — the old value is always a descriptor unique to the
//     in-flight copy, whose identity is the protocol's ABA guard.
//
// Between posting a descriptor and its resolution no process can observe a
// stale position — every reader helps resolve first — so the copy linearizes
// at the source read performed by the winning resolver (paper Figure 8 shows
// the interleaving this prevents).
package alist

import (
	"sync"
	"sync/atomic"

	"repro/internal/ebr"
)

// posCell is either a resolved position (src == nil) or a pending copy
// descriptor (src != nil). A descriptor's pointer identity is the CAS
// witness of its copy, so descriptors are pooled only under EBR grace: the
// owner retires its descriptor after the resolve completes (the slot can
// never hold it again), and any helper still holding the pointer is pinned,
// so the descriptor cannot be reissued — and its src cannot be rewritten —
// until that helper unpins. Resolved cells are immutable and may be shared
// by any number of slots.
type posCell struct {
	val *Cell // resolved position
	src *Cell // descriptor: the cell whose successor is being copied
}

var posCellPool = sync.Pool{New: func() any { return new(posCell) }}

// Recycle implements ebr.Recyclable (descriptors only; interned resolved
// cells are embedded in their Cell and recycled with it).
func (d *posCell) Recycle() {
	d.val, d.src = nil, nil
	posCellPool.Put(d)
}

// nilPos is the shared resolved cell for a nil position (severed tail).
var nilPos = &posCell{}

// resolvedPos returns the interned resolved cell for position c.
func resolvedPos(c *Cell) *posCell {
	if c == nil {
		return nilPos
	}
	return &c.res
}

// Pos is a single-writer multi-reader slot holding a *Cell. The zero value
// reads as nil; the owner must Init before sharing. Only the owner may call
// Init and CopyNext; any goroutine may call Read.
type Pos struct {
	cell atomic.Pointer[posCell]
}

// Init publishes c as the slot's value. Owner only; allocation-free (the
// interned resolved cell is installed directly).
func (p *Pos) Init(c *Cell) {
	p.cell.Store(resolvedPos(c))
}

// Read returns the current position, helping resolve an in-flight CopyNext
// if one is posted. It never returns a position older than the latest
// completed Init or CopyNext. Callers must hold a pin on the trie's EBR
// domain: a loaded descriptor stays valid (and un-reissued) only for the
// duration of the reader's pin.
func (p *Pos) Read() *Cell {
	c := p.cell.Load()
	if c == nil {
		return nil // zero-value slot
	}
	if c.src == nil {
		return c.val
	}
	return p.resolve(c)
}

// CopyNext atomically performs *p = src.Next(): the read of the successor
// and the write to the slot appear to happen at a single instant. Owner
// only; s is the owner's pin (nil leaves the descriptor to the GC).
// Allocation-free in steady state: the descriptor is pooled and retired
// here once resolve guarantees the slot no longer holds it.
func (p *Pos) CopyNext(src *Cell, s *ebr.Slot) *Cell {
	d := posCellPool.Get().(*posCell)
	d.src = src
	// The owner is the only writer and its previous copy resolved before
	// returning, so the current cell is resolved and a plain store suffices
	// to post the descriptor.
	p.cell.Store(d)
	v := p.resolve(d)
	// d left the slot during resolve and is posted at most once, so it can
	// only reach a helper that already holds the pointer — retiring on the
	// owner's pin is the unique reclamation point.
	if s != nil {
		s.Retire(d)
	}
	return v
}

// resolve completes descriptor d: the first successful CAS installs the
// position obtained by the winner's source read, which is the copy's
// linearization point. Losers return the winner's (or a newer) value.
func (p *Pos) resolve(d *posCell) *Cell {
	v := d.src.Next()
	if p.cell.CompareAndSwap(d, resolvedPos(v)) {
		return v
	}
	// Another helper resolved d first (or the owner already moved on to a
	// newer descriptor). Re-read; the cell now reflects a state at least as
	// new as d's resolution.
	c := p.cell.Load()
	for c != nil && c.src != nil {
		// A newer descriptor was posted after d resolved; helping it is
		// equally correct, and the owner posts at most one descriptor at a
		// time, so each iteration makes system-wide progress.
		v2 := c.src.Next()
		if p.cell.CompareAndSwap(c, resolvedPos(v2)) {
			return v2
		}
		c = p.cell.Load()
	}
	if c == nil {
		return nil
	}
	return c.val
}
