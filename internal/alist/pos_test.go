package alist

import (
	"sync"
	"testing"

	"repro/internal/unode"
)

// TestPosCopyAdvances drives Pos through a full RU-ALL-style traversal:
// head → cells → tail, checking Read always agrees with the last copy.
func TestPosCopyAdvances(t *testing.T) {
	l := New(true) // descending, like the RU-ALL
	for _, k := range []int64{3, 7, 5} {
		l.Insert(unode.NewIns(k), nil)
	}
	var p Pos
	p.Init(l.Head())
	if got := p.Read(); got != l.Head() {
		t.Fatalf("initial Read = %v, want head", got)
	}
	want := []int64{7, 5, 3, KeyNegInf}
	cur := l.Head()
	for _, k := range want {
		cur = p.CopyNext(cur, nil)
		if cur == nil || cur.Key != k {
			t.Fatalf("CopyNext advanced to %v, want key %d", cur, k)
		}
		if got := p.Read(); got != cur {
			t.Fatalf("Read = %v after copy, want %v", got, cur)
		}
	}
}

// TestPosZeroValueReadsNil documents the defensive nil of an uninitialized
// slot (core treats it as +∞ / not yet traversing).
func TestPosZeroValueReadsNil(t *testing.T) {
	var p Pos
	if got := p.Read(); got != nil {
		t.Fatalf("zero-value Read = %v, want nil", got)
	}
}

// TestPosConcurrentReaders races many readers against an owner advancing
// through a list. Under -race this exercises the descriptor-helping
// protocol; the assertion is that every reader observes positions in
// owner order (monotonically non-increasing keys), i.e. never a stale
// position from before a completed copy.
func TestPosConcurrentReaders(t *testing.T) {
	l := New(true)
	const n = 200
	for i := int64(0); i < n; i++ {
		l.Insert(unode.NewIns(i), nil)
	}
	var p Pos
	p.Init(l.Head())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := KeyPosInf
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := p.Read()
				if c == nil {
					t.Error("Read returned nil mid-traversal")
					return
				}
				if c.Key > last {
					t.Errorf("position went backwards: %d after %d", c.Key, last)
					return
				}
				last = c.Key
			}
		}()
	}
	cur := l.Head()
	for cur != nil && cur.Key != KeyNegInf {
		cur = p.CopyNext(cur, nil)
	}
	close(stop)
	wg.Wait()
}

// TestInsertRemoveChurnReusesEmbeddedRefs cycles insert/remove and checks
// the list stays structurally sound — the embedded selfRef/linkRef/markRef/
// unlinkRef lifecycle must behave exactly like freshly allocated refs.
func TestInsertRemoveChurnReusesEmbeddedRefs(t *testing.T) {
	l := New(false)
	for i := 0; i < 1000; i++ {
		u := unode.NewIns(int64(i % 7))
		l.Insert(u, nil)
		if !l.Contains(u) {
			t.Fatalf("cycle %d: inserted node missing", i)
		}
		if got := l.Remove(u, nil); got != 1 {
			t.Fatalf("cycle %d: Remove = %d, want 1", i, got)
		}
		if l.Len() != 0 {
			t.Fatalf("cycle %d: Len = %d, want 0", i, l.Len())
		}
	}
}

// TestConcurrentRemoveDuplicateCells races two removers of duplicate cells
// for one update node (the helper re-insertion shape): the mark claims must
// hand out each embedded ref at most once, and every cell must end up
// removed exactly once in total.
func TestConcurrentRemoveDuplicateCells(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		l := New(false)
		u := unode.NewIns(5)
		l.Insert(u, nil)
		l.Insert(u, nil) // duplicate cell, as a helper would leave
		var wg sync.WaitGroup
		total := make([]int, 2)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				total[g] = l.Remove(u, nil)
			}(g)
		}
		wg.Wait()
		if got := total[0] + total[1]; got != 2 {
			t.Fatalf("iter %d: combined removals = %d, want 2", iter, got)
		}
		if l.Len() != 0 || l.Contains(u) {
			t.Fatalf("iter %d: node still present after concurrent removes", iter)
		}
	}
}
