// Package alist implements the announcement linked lists of the lock-free
// binary trie (paper §5.1): the update announcement list U-ALL (sorted by
// ascending key) and the reverse update announcement list RU-ALL (sorted by
// descending key, ties in insertion order). Both are Harris-style lock-free
// linked lists with logical deletion via marked successor references.
//
// Cells are allocated per insertion rather than embedded in update nodes
// because a helper may re-insert an update node after its owner already
// removed it (paper lines 135–136, HelpActivate); Remove therefore unlinks
// every cell that carries the given update node.
//
// # Allocation discipline
//
// The hot paths are allocation-free in steady state: cells come from a
// sync.Pool and every successor reference a cell's lifecycle publishes —
// the initial reference, the reference that links it into its predecessor,
// the marked reference that logically deletes it and the reference that
// physically unlinks it — is embedded in the Cell and written only while it
// is still private to a single writer:
//
//   - selfRef and linkRef are written by the inserting goroutine before the
//     linking CAS publishes the cell (a failed CAS publishes nothing, so
//     rewriting them across retries is single-threaded by construction);
//   - markRef may be contended (owner and helpers race to remove the same
//     cell), so it is guarded by a one-shot claim flag: the claim winner is
//     the unique writer and publishes the ref at most once; losers fall
//     back to a heap allocation. A claimed ref whose CAS fails is abandoned
//     (never published), preserving the single-writer rule.
//
// Unlink refs are deliberately NOT embedded in the cell they unlink. An
// installed unlink ref lives in the PREDECESSOR's next field and stays
// readable there until an arbitrarily later CAS replaces it — long after
// the unlinked cell's grace period has expired and its memory has been
// reissued, at which point a reset of an embedded ref would corrupt the
// live predecessor's link. They come from their own pool instead (see
// refPool), with their own retire point.
//
// # Reclamation
//
// Cells (and their embedded refs) are pooled under epoch-based reclamation
// (internal/ebr, DESIGN.md §Memory & reclamation). The retire point is the
// successful unlink CAS in search: a success proves the predecessor held
// the expected unmarked reference at that instant — marking a cell swings
// its next pointer to a different ref object and ref objects are never
// reinstalled, so the predecessor was unmarked, hence still reachable, and
// the CAS removed the last reachable edge to the cell. That makes the
// unlink win unique per cell incarnation and the retired cell unreachable
// from the list. The same CAS also replaced the predecessor's previous
// reference, so every successful CAS on a next field doubles as the unique
// retire point for the pooled ref it displaced. Callers pass their
// operation's pin (*ebr.Slot); readers that traverse the list while
// holding a pin can never observe a recycled cell or ref, which restores
// the pointer-identity CAS witness the embedded-ref scheme relies on. A
// nil slot skips retiring (cells and refs are left to the GC, never
// reused) — correct, just not allocation-free.
package alist

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/ebr"
	"repro/internal/unode"
)

// Sentinel keys. The U-ALL head sentinel has key −∞ and its tail +∞; the
// RU-ALL is reversed (paper §5.1 note on sentinels).
const (
	KeyNegInf int64 = math.MinInt64
	KeyPosInf int64 = math.MaxInt64
)

// Cell is one list node. Key and Upd are immutable; the successor reference
// carries the deletion mark (Harris's algorithm, modeled as an immutable ref
// struct swapped by CAS, the Go equivalent of AtomicMarkableReference).
type Cell struct {
	// Key orders the cell. Sentinel cells have Upd == nil.
	Key int64
	// Upd is the announced update node.
	Upd *unode.UpdateNode

	next atomic.Pointer[ref]

	// selfRef is the cell's initial successor reference, written by the
	// inserting goroutine while the cell is still private (see the package
	// comment's allocation discipline).
	selfRef ref
	// linkRef is the reference that links this cell into its predecessor
	// ({next: this cell}); its content is constant.
	linkRef ref
	// markRef is the marked reference that logically deletes this cell;
	// written only by the winner of markClaim.
	markRef   ref
	markClaim atomic.Bool

	// res is the interned resolved position cell for Pos slots (val ==
	// this cell); see pos.go.
	res posCell
}

type ref struct {
	next   *Cell
	marked bool
	// pooled marks standalone unlink refs drawn from refPool. Embedded
	// refs (pooled == false) die with their cell; a pooled ref displaced
	// from a next field is retired by the displacing CAS winner.
	pooled bool
}

// refPool recycles the standalone unlink references search installs. An
// installed unlink ref outlives the cell it unlinked (it sits in the
// predecessor's next field until a later CAS replaces it), so it has its
// own lifecycle: Get → written while private → published by the unlink
// CAS → displaced by the next successful CAS on the same field, whose
// winner retires it → recycled after grace.
var refPool = sync.Pool{New: func() any { return new(ref) }}

// newUnlinkRef draws a pooled ref for an unlink CAS. The ref is private
// until that CAS publishes it.
func newUnlinkRef(next *Cell) *ref {
	r := refPool.Get().(*ref)
	r.next = next
	r.marked = false
	r.pooled = true
	return r
}

// Recycle implements ebr.Recyclable for pooled unlink refs.
func (r *ref) Recycle() {
	r.next = nil
	refPool.Put(r)
}

// retireDisplaced retires the reference a successful next-field CAS just
// displaced, if it was a pooled unlink ref (embedded refs are covered by
// their cell's retirement). A nil slot leaves it to the GC.
func retireDisplaced(r *ref, s *ebr.Slot) {
	if r.pooled && s != nil {
		s.Retire(r)
	}
}

// intern initializes the cell's self-referential interned fields. Called
// once, before the cell is shared.
func (c *Cell) intern() {
	c.linkRef.next = c
	c.res.val = c
}

// cellPool recycles cells under EBR grace periods; see the package
// comment's reclamation section.
var cellPool = sync.Pool{New: func() any { return new(Cell) }}

// newCell draws a cell from the pool and resets it for a new incarnation.
// The cell is private until the linking CAS publishes it, so plain writes
// suffice; the one-shot claim flags must be re-armed here because their
// claimed state survived the previous incarnation.
func newCell(key int64, u *unode.UpdateNode) *Cell {
	c := cellPool.Get().(*Cell)
	c.Key, c.Upd = key, u
	c.selfRef = ref{}
	c.markRef = ref{}
	c.markClaim.Store(false)
	c.intern()
	return c
}

// Recycle implements ebr.Recyclable: called once per retired cell after its
// grace period, when no pinned traversal can still reach it.
func (c *Cell) Recycle() {
	c.Upd = nil
	c.next.Store(nil)
	cellPool.Put(c)
}

// claimMarkRef returns the embedded marked ref if this caller is the first
// to claim it, or a fresh allocation otherwise.
func (c *Cell) claimMarkRef() *ref {
	if c.markClaim.CompareAndSwap(false, true) {
		c.markRef.marked = true
		return &c.markRef
	}
	return &ref{marked: true}
}

// Next returns the successor cell, whether or not this cell is marked. The
// RU-ALL traversal follows cells one at a time through the atomic-copy slot
// and tolerates logically deleted cells (their successor pointers stay
// valid), exactly like the paper's traversal.
func (c *Cell) Next() *Cell {
	r := c.next.Load()
	if r == nil {
		return nil
	}
	return r.next
}

// Marked reports whether the cell has been logically deleted.
func (c *Cell) Marked() bool {
	r := c.next.Load()
	return r != nil && r.marked
}

// List is a lock-free sorted linked list of update-node cells with sentinel
// head and tail. If Descending is set, cells are sorted by decreasing key
// (RU-ALL); otherwise by increasing key (U-ALL). Equal keys appear in
// insertion order in both directions.
type List struct {
	head       *Cell
	tail       *Cell
	descending bool
}

// New returns an empty list. descending selects RU-ALL order.
func New(descending bool) *List {
	headKey, tailKey := KeyNegInf, KeyPosInf
	if descending {
		headKey, tailKey = KeyPosInf, KeyNegInf
	}
	l := &List{
		head:       &Cell{Key: headKey},
		tail:       &Cell{Key: tailKey},
		descending: descending,
	}
	l.head.intern()
	l.tail.intern()
	l.head.selfRef.next = l.tail
	l.head.next.Store(&l.head.selfRef)
	return l
}

// Head returns the head sentinel; traversals start at Head().Next().
func (l *List) Head() *Cell {
	return l.head
}

// precedes reports whether a cell with key a stays strictly before a new
// cell with key b, so that equal keys insert after existing ones.
func (l *List) precedes(a, b int64) bool {
	if l.descending {
		return a >= b
	}
	return a <= b
}

// search returns adjacent unmarked cells (pred, succ) such that pred is the
// last cell preceding key and succ the first not preceding it, physically
// unlinking any marked cells encountered (Harris search). Unlinked cells
// are retired on s (the caller's pin) — see the package comment for why the
// successful unlink CAS is the unique retire point.
func (l *List) search(key int64, s *ebr.Slot) (pred *Cell, predRef *ref, succ *Cell) {
retry:
	for {
		pred = l.head
		predRef = pred.next.Load()
		cur := predRef.next
		for {
			curRef := cur.next.Load()
			for curRef != nil && curRef.marked {
				// Unlink the marked cell. On failure the neighborhood
				// changed; restart (the unpublished ref goes straight back
				// to its pool). On success this CAS is the unique retire
				// point for both the cell and the ref it displaced.
				ur := newUnlinkRef(curRef.next)
				if !pred.next.CompareAndSwap(predRef, ur) {
					ur.Recycle()
					continue retry
				}
				retireDisplaced(predRef, s)
				if s != nil {
					s.Retire(cur)
				}
				predRef = pred.next.Load()
				if predRef.marked {
					continue retry
				}
				cur = predRef.next
				curRef = cur.next.Load()
			}
			if cur == l.tail || !l.precedes(cur.Key, key) {
				return pred, predRef, cur
			}
			pred, predRef = cur, curRef
			cur = curRef.next
		}
	}
}

// Insert adds a new cell for u (key u.Key) after all cells with equal key
// and returns the cell. Duplicate cells for the same update node are
// permitted (helper re-insertion). Allocation-free in steady state: the
// cell comes from the EBR-guarded pool and its successor references are
// embedded, written only while the cell is private (a failed linking CAS
// publishes nothing). s is the caller's pin (nil disables reclamation).
func (l *List) Insert(u *unode.UpdateNode, s *ebr.Slot) *Cell {
	cell := newCell(u.Key, u)
	for {
		pred, predRef, succ := l.search(u.Key, s)
		if predRef.marked || predRef.next != succ {
			continue
		}
		cell.selfRef.next = succ
		cell.next.Store(&cell.selfRef)
		if pred.next.CompareAndSwap(predRef, &cell.linkRef) {
			retireDisplaced(predRef, s)
			return cell
		}
	}
}

// InsertRun links one new cell per update node in a single search pass —
// the batch announcement of the combining layer (see internal/combine and
// DESIGN.md §Combining layer). us must be sorted in list order (ascending
// keys for U-ALL, descending for RU-ALL; ties are fine and insert after
// existing equal keys, like Insert). The cells are ordinary single-key
// cells, so every traversal invariant of the paper is untouched; what is
// amortized is the Harris search and the head-region CAS traffic — one
// walk links the whole run instead of one walk per announcement. On
// contention the walk restarts from the head for the remaining suffix,
// which keeps the pass lock-free for the same reason Insert is.
func (l *List) InsertRun(us []*unode.UpdateNode, s *ebr.Slot) {
	i := 0
restart:
	for i < len(us) {
		pred, predRef, succ := l.search(us[i].Key, s)
		for i < len(us) {
			u := us[i]
			// Advance (pred, succ) from the previous insertion point to
			// this node's. Marked cells mean a concurrent removal got
			// here first; restart the search for the suffix.
			for succ != l.tail && l.precedes(succ.Key, u.Key) {
				r := succ.next.Load()
				if r == nil || r.marked {
					continue restart
				}
				pred, predRef, succ = succ, r, r.next
			}
			if predRef.marked || predRef.next != succ {
				continue restart
			}
			cell := newCell(u.Key, u)
			cell.selfRef.next = succ
			cell.next.Store(&cell.selfRef)
			if !pred.next.CompareAndSwap(predRef, &cell.linkRef) {
				continue restart
			}
			retireDisplaced(predRef, s)
			pred, predRef = cell, cell.next.Load()
			succ = predRef.next
			i++
		}
	}
}

// RemoveRun logically deletes every cell carrying any node of us and
// physically unlinks the marked cells — the batch retirement matching
// InsertRun. us must be sorted in list order with distinct keys. Each pass
// walks the list once, marking matches as it goes, then unlinks via one
// full search; passes repeat until one finds nothing unmarked, which
// mirrors Remove's loop and catches cells a helper re-inserted behind the
// scan cursor (helpers stop re-inserting once the node's Completed flag is
// set, so the loop terminates).
func (l *List) RemoveRun(us []*unode.UpdateNode, s *ebr.Slot) {
	if len(us) == 0 {
		return
	}
	for {
		marked := 0
		i := 0
		for cur := l.head.Next(); cur != nil && cur != l.tail && i < len(us); cur = cur.Next() {
			for i < len(us) && l.strictlyPrecedes(us[i].Key, cur.Key) {
				i++ // every cell for us[i] lies behind the cursor now
			}
			if i == len(us) {
				break
			}
			if cur.Upd != us[i] {
				continue
			}
			var mr *ref
			for {
				r := cur.next.Load()
				if r.marked {
					break
				}
				if mr == nil {
					mr = cur.claimMarkRef()
				}
				mr.next = r.next
				if cur.next.CompareAndSwap(r, mr) {
					retireDisplaced(r, s)
					marked++
					break
				}
			}
		}
		// One full physical pass: searching past every key unlinks all
		// marked cells encountered on the way.
		end := KeyPosInf
		if l.descending {
			end = KeyNegInf
		}
		l.search(end, s)
		if marked == 0 {
			return
		}
	}
}

// strictlyPrecedes reports whether every cell with key a lies strictly
// before any cell with key b in list order.
func (l *List) strictlyPrecedes(a, b int64) bool {
	if l.descending {
		return a > b
	}
	return a < b
}

// Remove logically deletes every cell carrying u and physically unlinks
// them. It returns the number of cells removed. Removing an absent node is
// a no-op returning 0. s is the caller's pin (nil disables reclamation).
func (l *List) Remove(u *unode.UpdateNode, s *ebr.Slot) int {
	removed := 0
	for {
		cell := l.findCell(u)
		if cell == nil {
			return removed
		}
		var mr *ref
		for {
			r := cell.next.Load()
			if r.marked {
				break // someone else marked it; look for another cell
			}
			if mr == nil {
				mr = cell.claimMarkRef()
			}
			mr.next = r.next
			if cell.next.CompareAndSwap(r, mr) {
				retireDisplaced(r, s)
				removed++
				break
			}
		}
		// Physically unlink via a search around the key.
		l.search(u.Key, s)
	}
}

// findCell scans the key's region for an unmarked cell carrying u.
func (l *List) findCell(u *unode.UpdateNode) *Cell {
	cur := l.head.Next()
	for cur != nil && cur != l.tail && l.precedes(cur.Key, u.Key) {
		if cur.Upd == u && !cur.Marked() {
			return cur
		}
		cur = cur.Next()
	}
	return nil
}

// Contains reports whether an unmarked cell for u is currently linked.
// Intended for tests and metrics.
func (l *List) Contains(u *unode.UpdateNode) bool {
	return l.findCell(u) != nil
}

// Len counts unmarked non-sentinel cells. O(n); for tests and metrics only.
func (l *List) Len() int {
	n := 0
	for cur := l.head.Next(); cur != nil && cur != l.tail; cur = cur.Next() {
		if !cur.Marked() {
			n++
		}
	}
	return n
}

// Keys returns the keys of unmarked cells in list order. For tests.
func (l *List) Keys() []int64 {
	var keys []int64
	for cur := l.head.Next(); cur != nil && cur != l.tail; cur = cur.Next() {
		if !cur.Marked() {
			keys = append(keys, cur.Key)
		}
	}
	return keys
}
