// Package alist implements the announcement linked lists of the lock-free
// binary trie (paper §5.1): the update announcement list U-ALL (sorted by
// ascending key) and the reverse update announcement list RU-ALL (sorted by
// descending key, ties in insertion order). Both are Harris-style lock-free
// linked lists with logical deletion via marked successor references.
//
// Cells are allocated per insertion rather than embedded in update nodes
// because a helper may re-insert an update node after its owner already
// removed it (paper lines 135–136, HelpActivate); Remove therefore unlinks
// every cell that carries the given update node.
//
// # Allocation discipline
//
// The hot paths run one heap allocation per Insert (the Cell itself) and
// zero per Remove in the common case. Every successor reference a cell's
// lifecycle publishes — the initial reference, the reference that links it
// into its predecessor, the marked reference that logically deletes it and
// the reference that physically unlinks it — is embedded in the Cell and
// written only while it is still private to a single writer:
//
//   - selfRef and linkRef are written by the inserting goroutine before the
//     linking CAS publishes the cell (a failed CAS publishes nothing, so
//     rewriting them across retries is single-threaded by construction);
//   - markRef and unlinkRef may be contended (owner and helpers race to
//     remove the same cell, concurrent searches race to unlink it), so they
//     are guarded by one-shot claim flags: the claim winner is the unique
//     writer and publishes the ref at most once; losers fall back to a heap
//     allocation. A claimed ref whose CAS fails is abandoned (never
//     published), preserving the single-writer rule.
//
// Embedded refs are never recycled: once published their identity is a CAS
// witness exactly like a heap-allocated ref's, and Go's GC reclaims them
// with the cell. See DESIGN.md §Memory & reclamation for why the cells
// themselves are left to the GC rather than pooled.
package alist

import (
	"math"
	"sync/atomic"

	"repro/internal/unode"
)

// Sentinel keys. The U-ALL head sentinel has key −∞ and its tail +∞; the
// RU-ALL is reversed (paper §5.1 note on sentinels).
const (
	KeyNegInf int64 = math.MinInt64
	KeyPosInf int64 = math.MaxInt64
)

// Cell is one list node. Key and Upd are immutable; the successor reference
// carries the deletion mark (Harris's algorithm, modeled as an immutable ref
// struct swapped by CAS, the Go equivalent of AtomicMarkableReference).
type Cell struct {
	// Key orders the cell. Sentinel cells have Upd == nil.
	Key int64
	// Upd is the announced update node.
	Upd *unode.UpdateNode

	next atomic.Pointer[ref]

	// selfRef is the cell's initial successor reference, written by the
	// inserting goroutine while the cell is still private (see the package
	// comment's allocation discipline).
	selfRef ref
	// linkRef is the reference that links this cell into its predecessor
	// ({next: this cell}); its content is constant.
	linkRef ref
	// markRef is the marked reference that logically deletes this cell;
	// written only by the winner of markClaim.
	markRef   ref
	markClaim atomic.Bool
	// unlinkRef is the reference that physically unlinks this cell from its
	// predecessor; written only by the winner of unlinkClaim.
	unlinkRef   ref
	unlinkClaim atomic.Bool

	// res is the interned resolved position cell for Pos slots (val ==
	// this cell); see pos.go.
	res posCell
}

type ref struct {
	next   *Cell
	marked bool
}

// intern initializes the cell's self-referential interned fields. Called
// once, before the cell is shared.
func (c *Cell) intern() {
	c.linkRef.next = c
	c.res.val = c
}

// claimMarkRef returns the embedded marked ref if this caller is the first
// to claim it, or a fresh allocation otherwise.
func (c *Cell) claimMarkRef() *ref {
	if c.markClaim.CompareAndSwap(false, true) {
		c.markRef.marked = true
		return &c.markRef
	}
	return &ref{marked: true}
}

// claimUnlinkRef returns the embedded unlink ref if this caller is the first
// to claim it, or a fresh allocation otherwise.
func (c *Cell) claimUnlinkRef() *ref {
	if c.unlinkClaim.CompareAndSwap(false, true) {
		return &c.unlinkRef
	}
	return &ref{}
}

// Next returns the successor cell, whether or not this cell is marked. The
// RU-ALL traversal follows cells one at a time through the atomic-copy slot
// and tolerates logically deleted cells (their successor pointers stay
// valid), exactly like the paper's traversal.
func (c *Cell) Next() *Cell {
	r := c.next.Load()
	if r == nil {
		return nil
	}
	return r.next
}

// Marked reports whether the cell has been logically deleted.
func (c *Cell) Marked() bool {
	r := c.next.Load()
	return r != nil && r.marked
}

// List is a lock-free sorted linked list of update-node cells with sentinel
// head and tail. If Descending is set, cells are sorted by decreasing key
// (RU-ALL); otherwise by increasing key (U-ALL). Equal keys appear in
// insertion order in both directions.
type List struct {
	head       *Cell
	tail       *Cell
	descending bool
}

// New returns an empty list. descending selects RU-ALL order.
func New(descending bool) *List {
	headKey, tailKey := KeyNegInf, KeyPosInf
	if descending {
		headKey, tailKey = KeyPosInf, KeyNegInf
	}
	l := &List{
		head:       &Cell{Key: headKey},
		tail:       &Cell{Key: tailKey},
		descending: descending,
	}
	l.head.intern()
	l.tail.intern()
	l.head.selfRef.next = l.tail
	l.head.next.Store(&l.head.selfRef)
	return l
}

// Head returns the head sentinel; traversals start at Head().Next().
func (l *List) Head() *Cell {
	return l.head
}

// precedes reports whether a cell with key a stays strictly before a new
// cell with key b, so that equal keys insert after existing ones.
func (l *List) precedes(a, b int64) bool {
	if l.descending {
		return a >= b
	}
	return a <= b
}

// search returns adjacent unmarked cells (pred, succ) such that pred is the
// last cell preceding key and succ the first not preceding it, physically
// unlinking any marked cells encountered (Harris search).
func (l *List) search(key int64) (pred *Cell, predRef *ref, succ *Cell) {
retry:
	for {
		pred = l.head
		predRef = pred.next.Load()
		cur := predRef.next
		for {
			curRef := cur.next.Load()
			for curRef != nil && curRef.marked {
				// Unlink the marked cell. On failure the neighborhood
				// changed; restart. The unlink ref comes from the cell's
				// one-shot claim when possible (see package comment).
				ur := cur.claimUnlinkRef()
				ur.next = curRef.next
				if !pred.next.CompareAndSwap(predRef, ur) {
					continue retry
				}
				predRef = pred.next.Load()
				if predRef.marked {
					continue retry
				}
				cur = predRef.next
				curRef = cur.next.Load()
			}
			if cur == l.tail || !l.precedes(cur.Key, key) {
				return pred, predRef, cur
			}
			pred, predRef = cur, curRef
			cur = curRef.next
		}
	}
}

// Insert adds a new cell for u (key u.Key) after all cells with equal key
// and returns the cell. Duplicate cells for the same update node are
// permitted (helper re-insertion). One heap allocation: the cell; its
// successor references are embedded and written only while the cell is
// private (a failed linking CAS publishes nothing).
func (l *List) Insert(u *unode.UpdateNode) *Cell {
	cell := &Cell{Key: u.Key, Upd: u}
	cell.intern()
	for {
		pred, predRef, succ := l.search(u.Key)
		if predRef.marked || predRef.next != succ {
			continue
		}
		cell.selfRef.next = succ
		cell.next.Store(&cell.selfRef)
		if pred.next.CompareAndSwap(predRef, &cell.linkRef) {
			return cell
		}
	}
}

// InsertRun links one new cell per update node in a single search pass —
// the batch announcement of the combining layer (see internal/combine and
// DESIGN.md §Combining layer). us must be sorted in list order (ascending
// keys for U-ALL, descending for RU-ALL; ties are fine and insert after
// existing equal keys, like Insert). The cells are ordinary single-key
// cells, so every traversal invariant of the paper is untouched; what is
// amortized is the Harris search and the head-region CAS traffic — one
// walk links the whole run instead of one walk per announcement. On
// contention the walk restarts from the head for the remaining suffix,
// which keeps the pass lock-free for the same reason Insert is.
func (l *List) InsertRun(us []*unode.UpdateNode) {
	i := 0
restart:
	for i < len(us) {
		pred, predRef, succ := l.search(us[i].Key)
		for i < len(us) {
			u := us[i]
			// Advance (pred, succ) from the previous insertion point to
			// this node's. Marked cells mean a concurrent removal got
			// here first; restart the search for the suffix.
			for succ != l.tail && l.precedes(succ.Key, u.Key) {
				r := succ.next.Load()
				if r == nil || r.marked {
					continue restart
				}
				pred, predRef, succ = succ, r, r.next
			}
			if predRef.marked || predRef.next != succ {
				continue restart
			}
			cell := &Cell{Key: u.Key, Upd: u}
			cell.intern()
			cell.selfRef.next = succ
			cell.next.Store(&cell.selfRef)
			if !pred.next.CompareAndSwap(predRef, &cell.linkRef) {
				continue restart
			}
			pred, predRef = cell, cell.next.Load()
			succ = predRef.next
			i++
		}
	}
}

// RemoveRun logically deletes every cell carrying any node of us and
// physically unlinks the marked cells — the batch retirement matching
// InsertRun. us must be sorted in list order with distinct keys. Each pass
// walks the list once, marking matches as it goes, then unlinks via one
// full search; passes repeat until one finds nothing unmarked, which
// mirrors Remove's loop and catches cells a helper re-inserted behind the
// scan cursor (helpers stop re-inserting once the node's Completed flag is
// set, so the loop terminates).
func (l *List) RemoveRun(us []*unode.UpdateNode) {
	if len(us) == 0 {
		return
	}
	for {
		marked := 0
		i := 0
		for cur := l.head.Next(); cur != nil && cur != l.tail && i < len(us); cur = cur.Next() {
			for i < len(us) && l.strictlyPrecedes(us[i].Key, cur.Key) {
				i++ // every cell for us[i] lies behind the cursor now
			}
			if i == len(us) {
				break
			}
			if cur.Upd != us[i] {
				continue
			}
			var mr *ref
			for {
				r := cur.next.Load()
				if r.marked {
					break
				}
				if mr == nil {
					mr = cur.claimMarkRef()
				}
				mr.next = r.next
				if cur.next.CompareAndSwap(r, mr) {
					marked++
					break
				}
			}
		}
		// One full physical pass: searching past every key unlinks all
		// marked cells encountered on the way.
		end := KeyPosInf
		if l.descending {
			end = KeyNegInf
		}
		l.search(end)
		if marked == 0 {
			return
		}
	}
}

// strictlyPrecedes reports whether every cell with key a lies strictly
// before any cell with key b in list order.
func (l *List) strictlyPrecedes(a, b int64) bool {
	if l.descending {
		return a > b
	}
	return a < b
}

// Remove logically deletes every cell carrying u and physically unlinks
// them. It returns the number of cells removed. Removing an absent node is
// a no-op returning 0.
func (l *List) Remove(u *unode.UpdateNode) int {
	removed := 0
	for {
		cell := l.findCell(u)
		if cell == nil {
			return removed
		}
		var mr *ref
		for {
			r := cell.next.Load()
			if r.marked {
				break // someone else marked it; look for another cell
			}
			if mr == nil {
				mr = cell.claimMarkRef()
			}
			mr.next = r.next
			if cell.next.CompareAndSwap(r, mr) {
				removed++
				break
			}
		}
		// Physically unlink via a search around the key.
		l.search(u.Key)
	}
}

// findCell scans the key's region for an unmarked cell carrying u.
func (l *List) findCell(u *unode.UpdateNode) *Cell {
	cur := l.head.Next()
	for cur != nil && cur != l.tail && l.precedes(cur.Key, u.Key) {
		if cur.Upd == u && !cur.Marked() {
			return cur
		}
		cur = cur.Next()
	}
	return nil
}

// Contains reports whether an unmarked cell for u is currently linked.
// Intended for tests and metrics.
func (l *List) Contains(u *unode.UpdateNode) bool {
	return l.findCell(u) != nil
}

// Len counts unmarked non-sentinel cells. O(n); for tests and metrics only.
func (l *List) Len() int {
	n := 0
	for cur := l.head.Next(); cur != nil && cur != l.tail; cur = cur.Next() {
		if !cur.Marked() {
			n++
		}
	}
	return n
}

// Keys returns the keys of unmarked cells in list order. For tests.
func (l *List) Keys() []int64 {
	var keys []int64
	for cur := l.head.Next(); cur != nil && cur != l.tail; cur = cur.Next() {
		if !cur.Marked() {
			keys = append(keys, cur.Key)
		}
	}
	return keys
}
