package bitmap

import (
	"math/rand"
	"sync"
	"testing"
)

func TestWordIndex(t *testing.T) {
	for _, tc := range []struct {
		i    int64
		word int64
		bit  uint
	}{{0, 0, 0}, {1, 0, 1}, {63, 0, 63}, {64, 1, 0}, {130, 2, 2}} {
		w, b := WordIndex(tc.i)
		if w != tc.word || b != tc.bit {
			t.Errorf("WordIndex(%d) = (%d,%d), want (%d,%d)", tc.i, w, b, tc.word, tc.bit)
		}
	}
}

func TestSetTestClearPopCount(t *testing.T) {
	w := NewWords(200)
	if len(w) != 4 {
		t.Fatalf("NewWords(200): %d words, want 4", len(w))
	}
	for _, i := range []int64{0, 63, 64, 100, 199} {
		w.Set(i)
		if !w.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := w.PopCount(); got != 5 {
		t.Fatalf("PopCount = %d, want 5", got)
	}
	w.Clear(64)
	if w.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := w.PopCount(); got != 4 {
		t.Fatalf("PopCount after clear = %d, want 4", got)
	}
	// Set is idempotent (the load-first fast path must not skip a needed OR).
	w.Set(63)
	if got := w.PopCount(); got != 4 {
		t.Fatalf("PopCount after re-set = %d, want 4", got)
	}
	w.Reset()
	if got := w.PopCount(); got != 0 {
		t.Fatalf("PopCount after Reset = %d, want 0", got)
	}
}

func TestForEachSetOrder(t *testing.T) {
	w := NewWords(300)
	want := []int64{2, 63, 64, 127, 128, 255, 299}
	for _, i := range want {
		w.Set(i)
	}
	var got []int64
	w.ForEachSet(func(i int64) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEachSet visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEachSet visited %v, want %v", got, want)
		}
	}
}

func TestAllOnes(t *testing.T) {
	w := NewWords(70)
	for i := int64(0); i < 70; i++ {
		w.Set(i)
	}
	if !w.AllOnes(70) {
		t.Fatal("AllOnes(70) = false with all 70 bits set")
	}
	// Bits beyond n must not be required.
	if w.AllOnes(71) {
		t.Fatal("AllOnes(71) = true with only 70 bits set")
	}
	w.Clear(5)
	if w.AllOnes(70) {
		t.Fatal("AllOnes(70) = true with bit 5 clear")
	}
}

func TestScanHelpers(t *testing.T) {
	var word uint64 = 1<<3 | 1<<17 | 1<<60
	if got := NearestSetBelow(word, 64); got != 60 {
		t.Errorf("NearestSetBelow(·,64) = %d, want 60", got)
	}
	if got := NearestSetBelow(word, 17); got != 3 {
		t.Errorf("NearestSetBelow(·,17) = %d, want 3", got)
	}
	if got := NearestSetBelow(word, 3); got != -1 {
		t.Errorf("NearestSetBelow(·,3) = %d, want -1", got)
	}
	if got := NearestSetBelow(word, 0); got != -1 {
		t.Errorf("NearestSetBelow(·,0) = %d, want -1", got)
	}
	if got := NearestSetAbove(word, 3); got != 17 {
		t.Errorf("NearestSetAbove(·,3) = %d, want 17", got)
	}
	if got := NearestSetAbove(word, 60); got != -1 {
		t.Errorf("NearestSetAbove(·,60) = %d, want -1", got)
	}
	if got := NearestSetAtOrAbove(word, 17); got != 17 {
		t.Errorf("NearestSetAtOrAbove(·,17) = %d, want 17", got)
	}
	if got := NearestSetAtOrAbove(word, 61); got != -1 {
		t.Errorf("NearestSetAtOrAbove(·,61) = %d, want -1", got)
	}
	if got := NearestSetAtOrBelow(word, 17); got != 17 {
		t.Errorf("NearestSetAtOrBelow(·,17) = %d, want 17", got)
	}
	if got := NearestSetAtOrBelow(word, 2); got != -1 {
		t.Errorf("NearestSetAtOrBelow(·,2) = %d, want -1", got)
	}
	if got := NearestSetAtOrBelow(word, 63); got != 60 {
		t.Errorf("NearestSetAtOrBelow(·,63) = %d, want 60", got)
	}
	if got := NearestSetAtOrBelow(0, 63); got != -1 {
		t.Errorf("NearestSetAtOrBelow(0,63) = %d, want -1", got)
	}
}

func TestScanHelpersExhaustive(t *testing.T) {
	// Cross-check the branchy scan helpers against the obvious loops on
	// random words.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		word := rng.Uint64()
		bit := uint(rng.Intn(65))
		ref := func(lo, hi int) int {
			for i := hi; i >= lo; i-- {
				if word&(1<<uint(i)) != 0 {
					return i
				}
			}
			return -1
		}
		refUp := func(lo, hi int) int {
			for i := lo; i <= hi; i++ {
				if word&(1<<uint(i)) != 0 {
					return i
				}
			}
			return -1
		}
		if got, want := NearestSetBelow(word, bit), ref(0, int(bit)-1); got != want {
			t.Fatalf("NearestSetBelow(%#x,%d) = %d, want %d", word, bit, got, want)
		}
		if bit < 64 {
			if got, want := NearestSetAbove(word, bit), refUp(int(bit)+1, 63); got != want {
				t.Fatalf("NearestSetAbove(%#x,%d) = %d, want %d", word, bit, got, want)
			}
			if got, want := NearestSetAtOrAbove(word, bit), refUp(int(bit), 63); got != want {
				t.Fatalf("NearestSetAtOrAbove(%#x,%d) = %d, want %d", word, bit, got, want)
			}
			if got, want := NearestSetAtOrBelow(word, bit), ref(0, int(bit)); got != want {
				t.Fatalf("NearestSetAtOrBelow(%#x,%d) = %d, want %d", word, bit, got, want)
			}
		}
	}
}

func TestConcurrentSetMonotone(t *testing.T) {
	// Concurrent Set calls must never lose each other's bits (the OR is
	// atomic; the load-first fast path only skips when already visible).
	const n = 1 << 12
	w := NewWords(n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(g); i < n; i += 2 {
				w.Set(i)
			}
		}(g)
	}
	wg.Wait()
	if got := w.PopCount(); got != n {
		t.Fatalf("PopCount = %d, want %d", got, n)
	}
}
