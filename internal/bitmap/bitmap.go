// Package bitmap provides the shared atomic summary-word helpers used by
// the cache-compressed trie descents (internal/bitstrie) and the bitmap
// resize journal (internal/resize): fixed-width arrays of uint64 words
// where bit j of word w stands for element 64w+j, maintained with single
// atomic OR / AND-NOT instructions and queried with popcount and bit-scan.
//
// The two call sites use the words under different protocols — bitstrie
// keeps its summaries monotone (OR only, never cleared), resize clears
// generations from a single coordinator — so the package itself is
// protocol-free: it only guarantees that each helper is one atomic RMW or
// one atomic load.
package bitmap

import (
	"math/bits"
	"sync/atomic"
)

// WordBits is the number of elements covered by one summary word.
const WordBits = 64

// WordIndex returns the word and in-word bit position covering element i.
func WordIndex(i int64) (word int64, bit uint) {
	return i >> 6, uint(i & 63)
}

// WordsFor returns the number of words needed to cover n elements.
func WordsFor(n int64) int64 {
	return (n + WordBits - 1) / WordBits
}

// Words is a fixed-width array of atomic summary words. The zero value of
// a correctly-sized slice is an all-zeros bitmap.
type Words []atomic.Uint64

// NewWords returns an all-zeros bitmap covering n elements.
func NewWords(n int64) Words {
	return make(Words, WordsFor(n))
}

// Set sets bit i with one atomic OR. It avoids the RMW when the bit is
// already visible, so steady-state re-marking costs one shared load.
func (w Words) Set(i int64) {
	wi, bit := WordIndex(i)
	mask := uint64(1) << bit
	if w[wi].Load()&mask == 0 {
		w[wi].Or(mask)
	}
}

// SetMask ORs mask into word wi (one atomic OR), skipping the RMW when all
// bits of mask are already visible.
func (w Words) SetMask(wi int64, mask uint64) {
	if w[wi].Load()&mask != mask {
		w[wi].Or(mask)
	}
}

// Clear clears bit i with one atomic AND-NOT. Callers must ensure their
// protocol tolerates clearing (single writer, or frozen readers); the
// monotone bitstrie summaries never call it.
func (w Words) Clear(i int64) {
	wi, bit := WordIndex(i)
	w[wi].And(^(uint64(1) << bit))
}

// Test reports bit i under one atomic load.
func (w Words) Test(i int64) bool {
	wi, bit := WordIndex(i)
	return w[wi].Load()&(uint64(1)<<bit) != 0
}

// Load returns word wi.
func (w Words) Load(wi int64) uint64 { return w[wi].Load() }

// Reset zeroes every word with plain atomic stores. Single-writer only.
func (w Words) Reset() {
	for i := range w {
		w[i].Store(0)
	}
}

// PopCount returns the total number of set bits.
func (w Words) PopCount() int64 {
	var n int64
	for i := range w {
		n += int64(bits.OnesCount64(w[i].Load()))
	}
	return n
}

// AllOnes reports whether every bit covering n elements is set (words are
// checked against full masks, with the tail word masked to n%64 bits).
func (w Words) AllOnes(n int64) bool {
	full := n / WordBits
	for i := int64(0); i < full; i++ {
		if w[i].Load() != ^uint64(0) {
			return false
		}
	}
	if rem := uint(n % WordBits); rem != 0 {
		mask := (uint64(1) << rem) - 1
		if w[full].Load()&mask != mask {
			return false
		}
	}
	return true
}

// ForEachSet calls fn for every set bit, in ascending element order. Each
// word is loaded once; bits set after its load are not reported.
func (w Words) ForEachSet(fn func(i int64)) {
	for wi := range w {
		word := w[wi].Load()
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(int64(wi)*WordBits + int64(b))
			word &= word - 1
		}
	}
}

// --- single-word scan helpers (no atomics; operate on loaded words) ---------

// NearestSetBelow returns the largest set bit position strictly below bit in
// word, or -1. bit may be 64 (scan the whole word).
func NearestSetBelow(word uint64, bit uint) int {
	if bit == 0 {
		return -1
	}
	masked := word
	if bit < 64 {
		masked &= (uint64(1) << bit) - 1
	}
	if masked == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(masked)
}

// NearestSetAbove returns the smallest set bit position strictly above bit
// in word, or -1. Pass bit == ^uint(0) ("no lower bound") to scan the whole
// word via NearestSetAtOrAbove(word, 0).
func NearestSetAbove(word uint64, bit uint) int {
	if bit >= 63 {
		return -1
	}
	masked := word &^ ((uint64(2) << bit) - 1)
	if masked == 0 {
		return -1
	}
	return bits.TrailingZeros64(masked)
}

// NearestSetAtOrAbove returns the smallest set bit position ≥ bit, or -1.
func NearestSetAtOrAbove(word uint64, bit uint) int {
	if bit >= 64 {
		return -1
	}
	masked := word &^ ((uint64(1) << bit) - 1)
	if masked == 0 {
		return -1
	}
	return bits.TrailingZeros64(masked)
}

// NearestSetAtOrBelow returns the largest set bit position ≤ bit, or -1.
func NearestSetAtOrBelow(word uint64, bit uint) int {
	if bit >= 63 {
		masked := word
		if masked == 0 {
			return -1
		}
		return 63 - bits.LeadingZeros64(masked)
	}
	masked := word & ((uint64(2) << bit) - 1)
	if masked == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(masked)
}
