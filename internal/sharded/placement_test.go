package sharded

import (
	"strings"
	"testing"

	"repro/internal/adapt"
)

// Placement hint → shard mapping: bad hints are rejected loudly, the
// identity hint is the default layout with sticky claims, and a placed
// trie still runs the full update/query protocol.

func TestValidatePlacementRejectsBadHints(t *testing.T) {
	cases := []struct {
		name string
		hint []int
		k    int
		want string // substring the error must carry
	}{
		{"short", []int{0, 1}, 4, "2 entries for 4 shards"},
		{"long", []int{0, 1, 2, 3, 0}, 4, "5 entries for 4 shards"},
		{"negative", []int{0, -1, 2, 3}, 4, "outside group range"},
		{"too-large", []int{0, 1, 2, 4}, 4, "outside group range"},
		{"empty-for-shards", nil, 4, "0 entries for 4 shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidatePlacement(tc.hint, tc.k)
			if err == nil {
				t.Fatalf("ValidatePlacement(%v, %d) accepted a bad hint", tc.hint, tc.k)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not explain the rejection (want %q)", err, tc.want)
			}
		})
	}
	if err := ValidatePlacement([]int{0, 1, 2, 3}, 4); err != nil {
		t.Fatalf("identity hint rejected: %v", err)
	}
	if err := ValidatePlacement([]int{3, 3, 0, 0}, 4); err != nil {
		t.Fatalf("grouped hint rejected: %v", err)
	}
}

func TestNewWithOptionsPlacementRequiresCombining(t *testing.T) {
	if _, err := NewWithOptions(256, 4, Options{Placement: []int{0, 1, 2, 3}}); err == nil {
		t.Fatal("placement without combining was accepted")
	}
	if _, err := NewRelaxedWithOptions(256, 4, Options{Placement: []int{0, 1, 2, 3}}); err == nil {
		t.Fatal("relaxed placement without combining was accepted")
	}
	// Adaptive implies combining, so placement composes with it.
	if _, err := NewWithOptions(256, 4, Options{Adaptive: &adapt.Config{}, Placement: []int{0, 1, 2, 3}}); err != nil {
		t.Fatalf("placement + adaptive rejected: %v", err)
	}
}

func TestNewWithOptionsPlacementRejectsBadHint(t *testing.T) {
	if _, err := NewWithOptions(256, 4, Options{Combining: true, Placement: []int{0, 1}}); err == nil {
		t.Fatal("short hint survived construction")
	}
	if _, err := NewRelaxedWithOptions(256, 4, Options{Combining: true, Placement: []int{0, 9, 0, 0}}); err == nil {
		t.Fatal("out-of-range hint survived relaxed construction")
	}
}

// The default (no Placement) is the identity of the placed layout: no
// hint recorded, rotating claims. A placed trie records its hint and
// every shard's combiner claims sticky.
func TestPlacementDefaultIsIdentity(t *testing.T) {
	plain, err := NewCombining(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p := plain.Placement(); p != nil {
		t.Fatalf("unplaced trie reports placement %v", p)
	}
	for i := 0; i < 4; i++ {
		if plain.shards[i].comb.Placed() {
			t.Fatalf("unplaced shard %d has a sticky combiner", i)
		}
	}

	hint := []int{0, 0, 1, 1}
	placed, err := NewWithOptions(256, 4, Options{Combining: true, Placement: hint})
	if err != nil {
		t.Fatal(err)
	}
	got := placed.Placement()
	if len(got) != len(hint) {
		t.Fatalf("Placement() = %v, want %v", got, hint)
	}
	for i := range hint {
		if got[i] != hint[i] {
			t.Fatalf("Placement() = %v, want %v", got, hint)
		}
	}
	// The accessor must hand out a copy, not the live hint.
	got[0] = 3
	if placed.Placement()[0] != 0 {
		t.Fatal("Placement() leaked the internal hint slice")
	}
	for i := 0; i < 4; i++ {
		if !placed.shards[i].comb.Placed() {
			t.Fatalf("placed shard %d is not sticky", i)
		}
		if placed.shards[i].comb.SlotCount() < 8 {
			t.Fatalf("placed shard %d carved only %d slots", i, placed.shards[i].comb.SlotCount())
		}
	}
}

// A placed trie is behaviourally the same set: a single-goroutine
// insert/delete/query sweep agrees key for key with the unplaced one.
// (The concurrent proof is the conformance variant in
// conformance_test.go.)
func TestPlacedTrieSemanticsMatchUnplaced(t *testing.T) {
	placed, err := NewWithOptions(512, 8, Options{Combining: true, Placement: []int{0, 0, 1, 1, 2, 2, 3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewCombining(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x < 512; x += 3 {
		placed.Insert(x)
		plain.Insert(x)
	}
	for x := int64(0); x < 512; x += 9 {
		placed.Delete(x)
		plain.Delete(x)
	}
	for x := int64(0); x < 512; x++ {
		if placed.Search(x) != plain.Search(x) {
			t.Fatalf("Search(%d): placed %v, plain %v", x, placed.Search(x), plain.Search(x))
		}
		if p1, p2 := placed.Predecessor(x), plain.Predecessor(x); p1 != p2 {
			t.Fatalf("Predecessor(%d): placed %d, plain %d", x, p1, p2)
		}
	}
	if placed.Len() != plain.Len() {
		t.Fatalf("Len: placed %d, plain %d", placed.Len(), plain.Len())
	}
}
