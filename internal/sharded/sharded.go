// Package sharded partitions the universe {0,…,u−1} into a power-of-two
// number of contiguous shards, each backed by an independent core trie with
// its own U-ALL/RU-ALL/P-ALL announcement lists. Operations on disjoint key
// ranges then announce on disjoint cache lines, removing the global
// announcement-list hotspot that caps multicore throughput of the unsharded
// trie (DESIGN.md §Sharding).
//
// Each shard additionally maintains a lock-free occupancy summary — three
// padded per-shard atomics updated only on that shard's fast paths:
//
//   - count: an over-approximation of the shard's cardinality. A winning
//     Insert increments BEFORE its core operation and a winning Delete
//     decrements AFTER its core operation (a losing Insert rolls its
//     increment back), so at every instant count ≥ |S ∩ shard| and
//     count == 0 proves the shard empty at the instant of the read. This is
//     what lets Predecessor, Floor, Max, Range and Keys skip empty shards
//     instead of paying a full per-shard traversal.
//   - pending: the number of in-flight updates (incremented before, and
//     decremented after, every update attempt).
//   - version: the number of completed winning updates.
//
// Cross-shard Predecessor stitches shards together: it queries the owning
// shard and, when that shard holds no key below y, falls back to the max of
// the nearest lower non-empty shard. The fallback validates its scan against
// the pending/version pair (see Predecessor) so the common case is strictly
// linearizable, and retries — each retry forced by another operation's
// completed progress — otherwise.
package sharded

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/combine"
	"repro/internal/core"
)

// MaxShards bounds the shard count (each shard costs Θ(u/k) space plus a
// padded header; the summary scan is O(k)).
const MaxShards = 1 << 16

// ScanRetries bounds Predecessor's fallback validation loop. Validation
// fails only when a concurrent update announced or completed in a scanned
// lower shard mid-scan, so every retry is forced by system-wide progress
// and the loop is lock-free; the bound exists so a pathological churn
// storm (or a writer parked mid-update for the whole sequence) degrades to
// the documented weakly-consistent answer instead of unbounded latency. A
// variable, not a constant, so the linearizability tests can raise it far
// enough that an OS-preempted writer always resumes within the spin,
// making the weak path unreachable under test schedulers.
var ScanRetries = 64

// shard is one partition: an independent core trie plus its occupancy
// summary, (with NewCombining or NewAdaptive) its flat-combining
// publication slots, and (with NewAdaptive) the controller that flips its
// publication mode at runtime. Padded to 128 bytes (two cache lines,
// clear of the adjacent-line prefetcher) so neighbouring shards' counters
// never false-share.
type shard struct {
	trie    *core.Trie
	count   atomic.Int64 // cardinality over-approximation (≥ |S ∩ shard|)
	pending atomic.Int64 // in-flight updates
	version atomic.Int64 // completed winning updates
	comb    *combine.Combiner
	ctl     *adapt.Controller
	_       [80]byte
}

// max returns the largest key in the shard (local coordinates), or −1. Two
// core operations; callers that need atomicity run it inside the validated
// window of Predecessor's fallback.
func (s *shard) max(width int64) int64 {
	if s.trie.Search(width - 1) {
		return width - 1
	}
	return s.trie.Predecessor(width - 1)
}

// Trie is the sharded lock-free binary trie. Create with New; the zero
// value is not usable. All methods are safe for concurrent use.
type Trie struct {
	u         int64 // padded universe size
	k         int   // shard count
	width     int64 // u / k, keys per shard
	shardBits uint  // log2(width)
	shards    []shard
	placement []int // shard→group placement hint; nil when unplaced
}

// Options selects the publication machinery for NewWithOptions. The zero
// value is plain New: per-op direct publication, no combiner, no
// controller, no placement.
type Options struct {
	// Combining enables per-shard flat combining (NewCombining).
	Combining bool
	// Adaptive, when non-nil, adds per-shard controllers driving the
	// publication mode at runtime (NewAdaptive; implies Combining). Zero
	// fields of the config take the tuned defaults.
	Adaptive *adapt.Config
	// Placement is the core-aware placement hint: Placement[i] is the
	// group id of the publisher population owning shard i's key range.
	// Shards sharing a group carve their publication slots from one
	// contiguous arena (so a group's slots live on neighbouring pages,
	// near the goroutines that publish to them) and claim sticky (a
	// shard's dominant publisher reuses one warm cache line between
	// operations). Requires Combining — placement shapes the publication
	// slots, and the direct path has none. Validate with
	// ValidatePlacement; nil means unplaced (the identity of the default
	// layout: one private slot array per shard, rotating claims).
	Placement []int
}

// ValidatePlacement checks a placement hint against a shard count: the
// hint must assign every one of the k shards a group id in [0, k). An
// identity hint (Placement[i] = i) reproduces the unplaced slot layout
// with sticky claims — the portable "each shard owned by its own
// publisher" default.
func ValidatePlacement(hint []int, k int) error {
	if len(hint) != k {
		return fmt.Errorf("sharded: placement hint has %d entries for %d shards", len(hint), k)
	}
	for i, g := range hint {
		if g < 0 || g >= k {
			return fmt.Errorf("sharded: placement hint[%d] = %d outside group range [0, %d)", i, g, k)
		}
	}
	return nil
}

// placementSlots sizes one placed shard's publication-slot carve: the
// GOMAXPROCS-proportional budget of DefaultSlots divided across the
// placement groups (each group is one publisher population), floored at 8
// so retraction pressure stays rare and rounded to the power of two the
// claim mask needs.
func placementSlots(groups int) int {
	n := 4 * runtime.GOMAXPROCS(0) / groups
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// geometry validates (u, k) and returns the padded universe, shard width
// and width's log2. Shared by New and NewRelaxed.
func geometry(u int64, k int) (pu, width int64, shardBits uint, err error) {
	if k < 1 || k > MaxShards || k&(k-1) != 0 {
		return 0, 0, 0, fmt.Errorf("sharded: shard count %d must be a power of two in [1, %d]", k, MaxShards)
	}
	if u < 2 {
		return 0, 0, 0, fmt.Errorf("sharded: universe %d must be at least 2", u)
	}
	pu = int64(1) << uint(bits.Len64(uint64(u-1)))
	if int64(k) > pu/2 {
		return 0, 0, 0, fmt.Errorf("sharded: %d shards over universe %d leave shards of width < 2", k, pu)
	}
	width = pu / int64(k)
	return pu, width, uint(bits.Len64(uint64(width)) - 1), nil
}

// New returns an empty sharded trie over {0,…,u−1} (u ≥ 2, padded to the
// next power of two) split into k contiguous shards. k must be a power of
// two with 1 ≤ k ≤ min(MaxShards, paddedU/2), so every shard spans at least
// two keys.
func New(u int64, k int) (*Trie, error) { return newTrie(u, k, false, nil) }

// NewCombining is New with per-shard flat combining enabled: every shard
// gets a combine.Combiner (default slot count) and Insert/Delete publish
// to the owning shard's slots instead of running the per-op path, so
// concurrent same-shard updates are drained into single core.ApplyBatch
// calls that announce once per batch (DESIGN.md §Combining layer). Reads
// and ApplyBatch are identical in both modes.
func NewCombining(u int64, k int) (*Trie, error) { return newTrie(u, k, true, nil) }

// NewAdaptive is NewCombining with the construction-time decision moved to
// runtime: every shard gets a combiner AND an adapt.Controller, and each
// Insert/Delete routes on the owning shard's current mode word — direct
// per-op publication until that shard's contention signals (announcement
// length, in-flight updates, drained batch sizes, election contention,
// retraction pressure) say combining would amortize, and back again with
// hysteresis when batches degenerate (DESIGN.md §Adaptive combining).
// cfg's zero fields take the tuned defaults.
func NewAdaptive(u int64, k int, cfg adapt.Config) (*Trie, error) {
	return NewWithOptions(u, k, Options{Combining: true, Adaptive: &cfg})
}

// NewWithOptions is the general constructor: New, NewCombining and
// NewAdaptive are fixed points of its Options space, and Placement is
// reachable only through it.
func NewWithOptions(u int64, k int, o Options) (*Trie, error) {
	combining := o.Combining || o.Adaptive != nil
	if o.Placement != nil {
		if !combining {
			return nil, fmt.Errorf("sharded: placement requires the combining layer (it shapes publication slots)")
		}
		if err := ValidatePlacement(o.Placement, k); err != nil {
			return nil, err
		}
	}
	pu, width, shardBits, err := geometry(u, k)
	if err != nil {
		return nil, err
	}
	t := &Trie{
		u:         pu,
		k:         k,
		width:     width,
		shardBits: shardBits,
		shards:    make([]shard, k),
	}
	// Placed construction: one arena per placement group, carved in shard
	// order so a group's shards get contiguous slot blocks.
	var arenas map[int]*combine.Arena
	var slotsPer int
	if o.Placement != nil {
		sizes := map[int]int{}
		for _, g := range o.Placement {
			sizes[g]++
		}
		slotsPer = placementSlots(len(sizes))
		arenas = make(map[int]*combine.Arena, len(sizes))
		for g, n := range sizes {
			arenas[g] = combine.NewArena(slotsPer * n)
		}
		t.placement = append([]int(nil), o.Placement...)
	}
	for i := range t.shards {
		c, err := core.New(t.width)
		if err != nil {
			return nil, err
		}
		t.shards[i].trie = c
		if combining {
			sh := &t.shards[i]
			apply := func(ops []combine.Op) { t.applyShardBatch(sh, ops) }
			applyOne := func(op combine.Op) {
				if op.Del {
					t.deleteDirect(sh, op.Key)
				} else {
					t.insertDirect(sh, op.Key)
				}
			}
			if arenas != nil {
				sh.comb = combine.NewPlaced(arenas[o.Placement[i]].Carve(slotsPer), apply, applyOne)
			} else {
				sh.comb = combine.New(0, apply, applyOne)
			}
			if o.Adaptive != nil {
				sh.ctl = adapt.New(*o.Adaptive, combine.Sampler(sh.comb,
					func() int64 { return int64(sh.trie.AnnouncedUpdates()) },
					sh.pending.Load))
			}
		}
	}
	return t, nil
}

func newTrie(u int64, k int, combining bool, acfg *adapt.Config) (*Trie, error) {
	return NewWithOptions(u, k, Options{Combining: combining, Adaptive: acfg})
}

// U returns the (padded) universe size.
func (t *Trie) U() int64 { return t.u }

// Shards returns the shard count.
func (t *Trie) Shards() int { return t.k }

// ShardWidth returns the number of keys per shard.
func (t *Trie) ShardWidth() int64 { return t.width }

// Shard returns the core trie backing shard i (tests, stats, trieviz).
func (t *Trie) Shard(i int) *core.Trie { return t.shards[i].trie }

// Occupancy returns shard i's cardinality over-approximation; exact at
// quiescence.
func (t *Trie) Occupancy(i int) int64 { return t.shards[i].count.Load() }

// Len returns the summed occupancy summary — an O(k) cardinality estimate,
// exact at quiescence.
func (t *Trie) Len() int64 {
	var n int64
	for i := range t.shards {
		n += t.shards[i].count.Load()
	}
	return n
}

// home splits x into its shard and local coordinates.
func (t *Trie) home(x int64) (*shard, int64) {
	return &t.shards[x>>t.shardBits], x & (t.width - 1)
}

// Search reports whether x is in the set. O(1) worst-case; exactly the
// owning shard's linearizable Search.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Search(x int64) bool {
	sh, lx := t.home(x)
	return sh.trie.Search(lx)
}

// Insert adds x to the set; linearized at the owning shard's Insert. The
// count increment precedes the core operation (and is rolled back on a lost
// race) so count never under-approximates the shard's cardinality. With
// NewCombining the operation publishes to the owning shard's combiner
// instead, and linearizes inside the round (or the retraction fallback)
// that applies it.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Insert(x int64) {
	sh, lx := t.home(x)
	if sh.ctl != nil {
		sh.ctl.Tick()
		if sh.ctl.Combining() {
			sh.comb.Submit(combine.Op{Key: lx})
			return
		}
		t.insertDirect(sh, lx)
		return
	}
	if sh.comb != nil {
		sh.comb.Submit(combine.Op{Key: lx})
		return
	}
	t.insertDirect(sh, lx)
}

func (t *Trie) insertDirect(sh *shard, lx int64) {
	sh.pending.Add(1)
	sh.count.Add(1)
	if sh.trie.Add(lx) {
		sh.version.Add(1)
	} else {
		sh.count.Add(-1)
	}
	sh.pending.Add(-1)
}

// Delete removes x from the set; linearized at the owning shard's Delete.
// The count decrement follows the core operation, preserving the
// over-approximation invariant. Routed like Insert under NewCombining.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Delete(x int64) {
	sh, lx := t.home(x)
	if sh.ctl != nil {
		sh.ctl.Tick()
		if sh.ctl.Combining() {
			sh.comb.Submit(combine.Op{Key: lx, Del: true})
			return
		}
		t.deleteDirect(sh, lx)
		return
	}
	if sh.comb != nil {
		sh.comb.Submit(combine.Op{Key: lx, Del: true})
		return
	}
	t.deleteDirect(sh, lx)
}

func (t *Trie) deleteDirect(sh *shard, lx int64) {
	sh.pending.Add(1)
	if sh.trie.Remove(lx) {
		sh.count.Add(-1)
		sh.version.Add(1)
	}
	sh.pending.Add(-1)
}

// applyShardBatch wraps one shard's core.ApplyBatch in the occupancy-
// summary discipline: the whole batch counts as one in-flight window
// (pending), every insert's count increment precedes the core call and
// rolls back on a loss, winning deletes decrement afterwards — so count
// over-approximates at every instant, exactly as in the per-op paths. ops
// carries shard-local keys, sorted strictly ascending, one op per key.
func (t *Trie) applyShardBatch(sh *shard, ops []core.BatchOp) {
	sh.pending.Add(1)
	var insPre int64
	for i := range ops {
		if !ops[i].Del {
			insPre++
		}
	}
	sh.count.Add(insPre)
	sh.trie.ApplyBatch(ops)
	var post, wins int64
	for i := range ops {
		switch {
		case ops[i].Del && ops[i].Won:
			post--
			wins++
		case !ops[i].Del && !ops[i].Won:
			post-- // roll back the pre-increment of a lost insert
		case !ops[i].Del && ops[i].Won:
			wins++
		}
	}
	sh.count.Add(post)
	sh.version.Add(wins)
	sh.pending.Add(-1)
}

// ApplyBatch applies a pre-batched op sequence — global keys, sorted
// strictly ascending, one op per key (combine.SortDedup's output form) —
// splitting it into per-shard runs. It REBASES the keys in ops to shard
// coordinates in place (callers own the slice; the public facade passes
// its conversion scratch) and fills the Won flags. Each shard's run is one
// counter-wrapped core.ApplyBatch; ops in different shards apply in
// ascending shard order, each linearizing individually.
func (t *Trie) ApplyBatch(ops []core.BatchOp) {
	for start := 0; start < len(ops); {
		j := int(ops[start].Key >> t.shardBits)
		end := start
		for end < len(ops) && int(ops[end].Key>>t.shardBits) == j {
			ops[end].Key &= t.width - 1
			end++
		}
		t.applyShardBatch(&t.shards[j], ops[start:end])
		start = end
	}
}

// Combining reports whether this trie HAS a per-shard combining layer
// (NewCombining and NewAdaptive both do; under NewAdaptive whether a
// given update publishes through it is the owning shard's live mode —
// see ShardCombining).
func (t *Trie) Combining() bool { return t.shards[0].comb != nil }

// Adaptive reports whether per-shard controllers drive the publication
// mode at runtime.
func (t *Trie) Adaptive() bool { return t.shards[0].ctl != nil }

// ShardCombining reports shard i's current publication mode (always true
// under NewCombining, always false under New).
func (t *Trie) ShardCombining(i int) bool {
	sh := &t.shards[i]
	if sh.ctl != nil {
		return sh.ctl.Combining()
	}
	return sh.comb != nil
}

// ShardController returns shard i's adaptive controller, or nil (tests,
// stats).
func (t *Trie) ShardController(i int) *adapt.Controller { return t.shards[i].ctl }

// ShardCombiner returns shard i's combiner, or nil when combining is
// disabled (observability wiring, tests).
func (t *Trie) ShardCombiner(i int) *combine.Combiner { return t.shards[i].comb }

// Placement returns a copy of the placement hint the trie was built with,
// or nil when unplaced.
func (t *Trie) Placement() []int {
	if t.placement == nil {
		return nil
	}
	return append([]int(nil), t.placement...)
}

// AdaptiveStats sums the per-shard mode-transition counters (zeros when
// the trie is not adaptive): cumulative direct→combining enables and
// combining→direct disables across all shards.
func (t *Trie) AdaptiveStats() (enables, disables int64) {
	for i := range t.shards {
		if c := t.shards[i].ctl; c != nil {
			e, d := c.Transitions()
			enables += e
			disables += d
		}
	}
	return enables, disables
}

// CombineStats sums the per-shard combiner counters (zeros when combining
// is disabled): rounds drained, ops applied inside rounds, ops that took
// the direct fallback, and the largest single round.
func (t *Trie) CombineStats() (rounds, batched, direct, maxBatch int64) {
	for i := range t.shards {
		if c := t.shards[i].comb; c != nil {
			r, b, d, m := c.StatsSnapshot()
			rounds += r
			batched += b
			direct += d
			if m > maxBatch {
				maxBatch = m
			}
		}
	}
	return rounds, batched, direct, maxBatch
}

// Predecessor returns the largest key in the set strictly smaller than y,
// or −1 if there is none.
//
// When the owning shard holds a key below y the answer is that shard's
// linearizable Predecessor and nothing else is touched. Otherwise the
// fallback scans lower shards for the nearest non-empty one (skipping
// shards whose count reads 0 — safe, because count over-approximates) and
// validates the scan: it snapshots the lower shards' version counters
// before re-querying the owning shard, and accepts only if afterwards
// every scanned lower shard still shows its snapshot version and zero
// pending updates. Acceptance proves the scanned lower shards were
// constant from snapshot to validation, so every lower-shard observation
// also held at the instant the owning-shard re-query linearized (which
// itself proved shard j empty below y), and the operation linearizes
// there. The owning shard is deliberately NOT validated — its updates at
// keys ≥ y are irrelevant, and a key < y appearing there after the
// re-query orders after the linearization point. Rejection means a
// concurrent update announced or completed in a scanned lower shard —
// system-wide progress — and the scan retries, keeping the operation
// lock-free. Only after ScanRetries consecutive failed validations — an
// update parked mid-flight in a scanned lower shard, or fresh updates
// completing in them, across every round — is the last scan's answer
// returned under Range's weak-consistency contract: the returned key was
// present at some instant during the call and no examined shard held a
// larger key below y when examined.
//
// Precondition: 0 ≤ y < U().
func (t *Trie) Predecessor(y int64) int64 {
	j := int(y >> t.shardBits)
	ly := y & (t.width - 1)
	if ly > 0 {
		if p := t.shards[j].trie.Predecessor(ly); p >= 0 {
			return int64(j)<<t.shardBits | p
		}
	}
	if j == 0 {
		return -1
	}
	return t.predFallback(j, ly)
}

// vsnapPool recycles the version-snapshot scratch of predFallback. The
// snapshot is op-local (never published), so pooling it is ABA-safe for the
// same reason as core's scratch arena; without it every cross-shard
// fallback would allocate an O(k) slice.
var vsnapPool = sync.Pool{New: func() any { return new([]int64) }}

// predFallback implements the validated cross-shard scan of Predecessor.
func (t *Trie) predFallback(j int, ly int64) int64 {
	vs := vsnapPool.Get().(*[]int64)
	defer vsnapPool.Put(vs)
	if cap(*vs) < j {
		*vs = make([]int64, j)
	}
	vsnap := (*vs)[:j]
	best := int64(-1)
	for attempt := 0; attempt < ScanRetries; attempt++ {
		for i := 0; i < j; i++ {
			vsnap[i] = t.shards[i].version.Load()
		}
		// Re-examine the owning shard inside the snapshot window: a hit is a
		// single linearizable core operation and needs no validation.
		if ly > 0 {
			if p := t.shards[j].trie.Predecessor(ly); p >= 0 {
				return int64(j)<<t.shardBits | p
			}
		}
		ans, low := int64(-1), -1
		for i := j - 1; i >= 0; i-- {
			sh := &t.shards[i]
			if sh.count.Load() == 0 {
				continue // provably empty at the instant of the read
			}
			if m := sh.max(t.width); m >= 0 {
				ans, low = int64(i)<<t.shardBits|m, i
				break
			}
		}
		best = ans
		if low < 0 {
			low = 0
		}
		valid := true
		for i := low; i < j; i++ {
			sh := &t.shards[i]
			if sh.pending.Load() != 0 || sh.version.Load() != vsnap[i] {
				valid = false
				break
			}
		}
		if valid {
			return ans
		}
		// No yield here: handing the processor to a spinning writer parks
		// this query for whole scheduler slices. The retry loop stays hot —
		// a preempted writer either resumes within the budget (version
		// changes, rescan sees its update) or the call degrades to the
		// documented weak answer.
	}
	return best
}

// min returns the smallest key in the shard (local coordinates), or −1.
// Like max, callers needing atomicity run it inside succFallback's
// validated window.
func (s *shard) min() int64 {
	if s.trie.Search(0) {
		return 0
	}
	return s.trie.Successor(0)
}

// Successor returns the smallest key in the set strictly greater than y,
// or −1 if there is none — the upward mirror of Predecessor, stitched
// through the same occupancy summary (skip shards whose count reads 0) and
// the same pending/version validation. One consistency caveat is
// inherited from the core operation rather than the stitch: a per-shard
// Successor is itself a composed probe (see core.Trie.Successor), so even
// a validated answer carries the Floor/Max family's weak-consistency
// contract under updates inside the answering shard — exact at
// quiescence, and every retry of the fallback is forced by another
// operation's completed progress, keeping the scan lock-free with the
// ScanRetries degradation bound.
//
// Precondition: 0 ≤ y < U().
func (t *Trie) Successor(y int64) int64 {
	j := int(y >> t.shardBits)
	ly := y & (t.width - 1)
	if ly < t.width-1 {
		if s := t.shards[j].trie.Successor(ly); s >= 0 {
			return int64(j)<<t.shardBits | s
		}
	}
	if j == t.k-1 {
		return -1
	}
	return t.succFallback(j, ly)
}

// succFallback is predFallback mirrored upward: snapshot the higher
// shards' version counters, re-query the owning shard inside the window,
// scan upward for the nearest non-empty shard's min, and accept only if
// every scanned higher shard still shows zero pending updates and its
// snapshot version.
func (t *Trie) succFallback(j int, ly int64) int64 {
	n := t.k - 1 - j // shards above j
	vs := vsnapPool.Get().(*[]int64)
	defer vsnapPool.Put(vs)
	if cap(*vs) < n {
		*vs = make([]int64, n)
	}
	vsnap := (*vs)[:n]
	best := int64(-1)
	for attempt := 0; attempt < ScanRetries; attempt++ {
		for i := 0; i < n; i++ {
			vsnap[i] = t.shards[j+1+i].version.Load()
		}
		if ly < t.width-1 {
			if s := t.shards[j].trie.Successor(ly); s >= 0 {
				return int64(j)<<t.shardBits | s
			}
		}
		ans, high := int64(-1), -1
		for i := j + 1; i < t.k; i++ {
			sh := &t.shards[i]
			if sh.count.Load() == 0 {
				continue // provably empty at the instant of the read
			}
			if m := sh.min(); m >= 0 {
				ans, high = int64(i)<<t.shardBits|m, i
				break
			}
		}
		best = ans
		if high < 0 {
			high = t.k - 1
		}
		valid := true
		for i := j + 1; i <= high; i++ {
			sh := &t.shards[i]
			if sh.pending.Load() != 0 || sh.version.Load() != vsnap[i-j-1] {
				valid = false
				break
			}
		}
		if valid {
			return ans
		}
		// No yield, for predFallback's reason: the loop stays hot so a
		// preempted writer either resumes within the budget or the call
		// degrades to the documented weak answer.
	}
	return best
}

// Max returns the largest key in the set, or −1 if the set is empty, by
// scanning shards from the top and skipping provably empty ones. Composed
// of linearizable per-shard steps under Range's weak-consistency contract.
func (t *Trie) Max() int64 {
	for i := t.k - 1; i >= 0; i-- {
		sh := &t.shards[i]
		if sh.count.Load() == 0 {
			continue
		}
		if m := sh.max(t.width); m >= 0 {
			return int64(i)<<t.shardBits | m
		}
	}
	return -1
}
