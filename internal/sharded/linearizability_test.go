package sharded_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/combine"
	"repro/internal/lincheck"
	"repro/internal/sharded"
)

// trieMaker builds the trie variant a lincheck run records against.
type trieMaker func(u int64, k int) (*sharded.Trie, error)

// runRecorded executes a concurrent workload against a fresh sharded trie
// and checks the recorded history for linearizability (the same harness as
// internal/core's suite, aimed at the cross-shard stitch). u=64 with k=16
// leaves shards 4 keys wide, so most predecessor queries cross shards.
func runRecorded(t *testing.T, u int64, k, workers int, mk trieMaker, script func(id int, rng *rand.Rand, do opRunner)) {
	t.Helper()
	tr, err := mk(u, k)
	if err != nil {
		t.Fatal(err)
	}
	rec := lincheck.NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 13))
			script(id, rng, opRunner{tr: tr, rec: rec})
		}(w)
	}
	wg.Wait()
	ok, msg, err := lincheck.CheckOrExplain(rec.History())
	if err != nil {
		t.Fatalf("checker error: %v", err)
	}
	if !ok {
		t.Fatalf("shards=%d: %s", k, msg)
	}
}

// opRunner wraps a sharded trie with history recording.
type opRunner struct {
	tr  *sharded.Trie
	rec *lincheck.Recorder
}

func (r opRunner) insert(k int64) {
	inv := r.rec.Begin()
	r.tr.Insert(k)
	r.rec.End(lincheck.OpInsert, k, 0, inv)
}

func (r opRunner) delete(k int64) {
	inv := r.rec.Begin()
	r.tr.Delete(k)
	r.rec.End(lincheck.OpDelete, k, 0, inv)
}

func (r opRunner) search(k int64) {
	inv := r.rec.Begin()
	got := r.tr.Search(k)
	res := int64(0)
	if got {
		res = 1
	}
	r.rec.End(lincheck.OpSearch, k, res, inv)
}

func (r opRunner) predecessor(y int64) {
	inv := r.rec.Begin()
	got := r.tr.Predecessor(y)
	r.rec.End(lincheck.OpPredecessor, y, got, inv)
}

func rounds(t *testing.T, n int) int {
	if testing.Short() {
		return n / 5
	}
	return n
}

func forEachShardCount(t *testing.T, name string, fn func(t *testing.T, k int, mk trieMaker)) {
	// The checker demands strict linearizability, but Predecessor's
	// cross-shard fallback documents a weakly-consistent answer after
	// ScanRetries failed validations — reachable here only if the OS parks
	// a writer mid-update across the whole spin. Raise the budget so a
	// parked writer always resumes first; the histories themselves stay
	// tiny, so version-change retries cannot exhaust it.
	old := sharded.ScanRetries
	sharded.ScanRetries = 1 << 20
	t.Cleanup(func() { sharded.ScanRetries = old })
	for _, k := range shardCounts {
		k := k
		t.Run(fmt.Sprintf("%s/shards=%d", name, k), func(t *testing.T) {
			fn(t, k, sharded.New)
		})
		// The adaptive variant records the same histories while per-shard
		// modes flip underneath: organically (aggressive controller,
		// combining at start) and forcibly inside every combining round
		// via the mid-round hook — the combiner-drain handoff on disable
		// included, since a forced off-flip mid-round leaves the round to
		// finish while new ops go direct.
		t.Run(fmt.Sprintf("%s/shards=%d/adaptive", name, k), func(t *testing.T) {
			var cur atomic.Pointer[sharded.Trie]
			var n atomic.Int64
			combine.SetTestHookMidRound(func() {
				if tr := cur.Load(); tr != nil {
					i := n.Add(1)
					tr.ShardController(int(i) % k).ForceMode(i%3 != 0)
				}
			})
			t.Cleanup(func() { combine.SetTestHookMidRound(nil) })
			fn(t, k, func(u int64, kk int) (*sharded.Trie, error) {
				cfg := aggressiveCfg()
				cfg.StartCombining = true
				tr, err := sharded.NewAdaptive(u, kk, cfg)
				if err != nil {
					return nil, err
				}
				cur.Store(tr)
				return tr, nil
			})
		})
	}
}

// TestShardedLinearizableUniform: random mixed workloads over the whole
// universe — predecessor queries land in arbitrary shards.
func TestShardedLinearizableUniform(t *testing.T) {
	forEachShardCount(t, "uniform", func(t *testing.T, k int, mk trieMaker) {
		for round := 0; round < rounds(t, 200); round++ {
			runRecorded(t, 64, k, 3, mk, func(id int, rng *rand.Rand, do opRunner) {
				for i := 0; i < 6; i++ {
					key := rng.Int63n(64)
					switch rng.Intn(4) {
					case 0:
						do.insert(key)
					case 1:
						do.delete(key)
					case 2:
						do.search(key)
					case 3:
						do.predecessor(key)
					}
				}
			})
		}
	})
}

// TestShardedLinearizableCrossShardStitch: updates racing in the shards a
// fallback scan must cross. With k=16 (width 4), keys 5 and 9 live two and
// three shards below the queries at 30/32, and key 2 is the stable floor
// the scan must never lose.
func TestShardedLinearizableCrossShardStitch(t *testing.T) {
	forEachShardCount(t, "stitch", func(t *testing.T, k int, mk trieMaker) {
		for round := 0; round < rounds(t, 200); round++ {
			runRecorded(t, 64, k, 4, mk, func(id int, rng *rand.Rand, do opRunner) {
				switch id {
				case 0:
					do.insert(2)
					do.insert(5)
					do.delete(5)
				case 1:
					do.insert(9)
					do.delete(9)
					do.predecessor(32)
				case 2:
					do.predecessor(30)
					do.predecessor(30)
				case 3:
					do.search(5)
					do.predecessor(32)
				}
			})
		}
	})
}

// TestShardedLinearizableBoundaryKeys: churn exactly on shard boundaries
// (multiples of the width-4 shards) with queries landing on boundaries, the
// hardest case for the owning-shard/fallback split (local predecessor of a
// boundary key is always the fallback path).
func TestShardedLinearizableBoundaryKeys(t *testing.T) {
	forEachShardCount(t, "boundary", func(t *testing.T, k int, mk trieMaker) {
		for round := 0; round < rounds(t, 200); round++ {
			runRecorded(t, 64, k, 4, mk, func(id int, rng *rand.Rand, do opRunner) {
				switch id {
				case 0:
					do.insert(16)
					do.delete(16)
					do.insert(16)
				case 1:
					do.insert(15)
					do.predecessor(16)
				case 2:
					do.predecessor(17)
					do.delete(15)
					do.predecessor(16)
				case 3:
					do.insert(12)
					do.predecessor(16)
					do.search(16)
				}
			})
		}
	})
}

// TestShardedLinearizableEmptySkip: a scan racing inserts into shards it
// has provably-empty skipped — the count over-approximation plus validation
// must never let a fallback answer miss a key it should have seen.
func TestShardedLinearizableEmptySkip(t *testing.T) {
	forEachShardCount(t, "emptyskip", func(t *testing.T, k int, mk trieMaker) {
		for round := 0; round < rounds(t, 200); round++ {
			runRecorded(t, 64, k, 4, mk, func(id int, rng *rand.Rand, do opRunner) {
				switch id {
				case 0:
					do.insert(1)
					do.predecessor(63)
				case 1:
					do.insert(40) // lands mid-scan in a previously empty shard
					do.delete(40)
				case 2:
					do.insert(22)
					do.delete(22)
					do.predecessor(63)
				case 3:
					do.predecessor(63)
					do.predecessor(41)
				}
			})
		}
	})
}

// TestShardedLinearizableHighContentionOneShard: everyone in one shard —
// sharding must not perturb the single-shard algorithm.
func TestShardedLinearizableHighContentionOneShard(t *testing.T) {
	forEachShardCount(t, "oneshard", func(t *testing.T, k int, mk trieMaker) {
		for round := 0; round < rounds(t, 150); round++ {
			runRecorded(t, 64, k, 4, mk, func(id int, rng *rand.Rand, do opRunner) {
				for i := 0; i < 4; i++ {
					switch rng.Intn(4) {
					case 0:
						do.insert(5)
					case 1:
						do.delete(5)
					case 2:
						do.search(5)
					case 3:
						do.predecessor(7)
					}
				}
			})
		}
	})
}
