package sharded_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/combine"
	"repro/internal/settest"
	"repro/internal/sharded"
)

// shardCounts is the matrix the whole suite runs against: unsharded (the
// reference behaviour), lightly sharded, and heavily sharded relative to
// the test universes (u=64 at k=16 leaves shards only 4 keys wide, so
// cross-shard stitching dominates).
var shardCounts = []int{1, 4, 16}

func factory(k int) settest.Factory {
	return func(u int64) (settest.Set, error) { return sharded.New(u, k) }
}

// adaptiveFlipFactory builds adaptive tries (aggressive controller,
// combining at start so rounds run from the first op) and wires the
// mid-round test hook to force-flip a rotating shard's mode inside every
// round — the mid-flip window of DESIGN.md §Adaptive combining. Two
// thirds of the forced flips re-enable combining so rounds (and therefore
// the hook) keep firing.
func adaptiveFlipFactory(t *testing.T, k int) settest.Factory {
	t.Helper()
	var cur atomic.Pointer[sharded.Trie]
	var n atomic.Int64
	combine.SetTestHookMidRound(func() {
		if tr := cur.Load(); tr != nil {
			i := n.Add(1)
			tr.ShardController(int(i) % k).ForceMode(i%3 != 0)
		}
	})
	t.Cleanup(func() { combine.SetTestHookMidRound(nil) })
	return func(u int64) (settest.Set, error) {
		cfg := aggressiveCfg()
		cfg.StartCombining = true
		tr, err := sharded.NewAdaptive(u, k, cfg)
		if err != nil {
			return nil, err
		}
		cur.Store(tr)
		return tr, nil
	}
}

// placedFactory builds combining tries with a grouped placement hint
// (shards i and i+1 share a group), proving placement is pure layout:
// the same conformance suite must pass with arena-carved sticky slots as
// with the default per-shard rotating ones.
func placedFactory(k int) settest.Factory {
	hint := make([]int, k)
	for i := range hint {
		hint[i] = i / 2 * 2 // pair up adjacent shards; identity at k=1
	}
	return func(u int64) (settest.Set, error) {
		return sharded.NewWithOptions(u, k, sharded.Options{Combining: true, Placement: hint})
	}
}

// forEachVariant runs fn against the plain factory, the adaptive
// flip-stressed one, and the placement-hinted one, at every shard count.
func forEachVariant(t *testing.T, fn func(t *testing.T, f settest.Factory)) {
	for _, k := range shardCounts {
		k := k
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			fn(t, factory(k))
		})
		t.Run(fmt.Sprintf("shards=%d/adaptive", k), func(t *testing.T) {
			fn(t, adaptiveFlipFactory(t, k))
		})
		t.Run(fmt.Sprintf("shards=%d/placed", k), func(t *testing.T) {
			fn(t, placedFactory(k))
		})
	}
}

func TestSequentialConformance(t *testing.T) {
	forEachVariant(t, func(t *testing.T, f settest.Factory) {
		settest.RunSequential(t, f, 64)
	})
}

func TestEdgeCases(t *testing.T) {
	forEachVariant(t, func(t *testing.T, f settest.Factory) {
		settest.RunEdgeCases(t, f, 64)
	})
}

func TestConcurrentConformance(t *testing.T) {
	forEachVariant(t, func(t *testing.T, f settest.Factory) {
		settest.RunConcurrent(t, f, 256, 8, 1200)
	})
}
