package sharded_test

import (
	"fmt"
	"testing"

	"repro/internal/settest"
	"repro/internal/sharded"
)

// shardCounts is the matrix the whole suite runs against: unsharded (the
// reference behaviour), lightly sharded, and heavily sharded relative to
// the test universes (u=64 at k=16 leaves shards only 4 keys wide, so
// cross-shard stitching dominates).
var shardCounts = []int{1, 4, 16}

func factory(k int) settest.Factory {
	return func(u int64) (settest.Set, error) { return sharded.New(u, k) }
}

func TestSequentialConformance(t *testing.T) {
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			settest.RunSequential(t, factory(k), 64)
		})
	}
}

func TestEdgeCases(t *testing.T) {
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			settest.RunEdgeCases(t, factory(k), 64)
		})
	}
}

func TestConcurrentConformance(t *testing.T) {
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			settest.RunConcurrent(t, factory(k), 256, 8, 1200)
		})
	}
}
