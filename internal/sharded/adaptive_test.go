package sharded_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/adapt"
	"repro/internal/combine"
	"repro/internal/sharded"
)

// aggressiveCfg samples and flips fast enough for test-sized workloads,
// with thresholds pinned so the suite is independent of default
// re-tuning.
func aggressiveCfg() adapt.Config {
	return adapt.Config{SampleEvery: 8, MinDwell: 1,
		Alpha: 0.5, Enable: 2.5, Disable: 1.4}
}

// TestAdaptiveDeterministicRouting flips one shard's mode by injecting
// synthetic signal samples through the controller's Step hook — no
// contention, no sleeps — and asserts the publication path follows the
// mode word: direct ops leave the combiner counters untouched, enabled
// ops drain through rounds, and the organic size-1 rounds of a solo
// publisher then disable the shard within the dwell bound.
func TestAdaptiveDeterministicRouting(t *testing.T) {
	cfg := adapt.Config{SampleEvery: 16, MinDwell: 2,
		Alpha: 0.5, Enable: 2.5, Disable: 1.4}
	tr, err := sharded.NewAdaptive(256, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Adaptive() || !tr.Combining() {
		t.Fatalf("Adaptive() = %v, Combining() = %v, want true, true", tr.Adaptive(), tr.Combining())
	}
	ctl := tr.ShardController(0)
	if ctl == nil || tr.ShardCombining(0) {
		t.Fatalf("shard 0: controller %v, combining %v; want non-nil, direct", ctl, tr.ShardCombining(0))
	}

	// Direct mode: ops must not touch the publication slots.
	for i := int64(0); i < 10; i++ {
		tr.Insert(i)
	}
	if _, batched, direct, _ := tr.CombineStats(); batched+direct != 0 {
		t.Fatalf("direct-mode ops reached the combiner: batched %d, direct %d", batched, direct)
	}

	// Inject clustering evidence: two visible peers per sample walk the
	// EWMA 1 → 2 → 2.5, reaching the enable threshold exactly at the
	// MinDwell-th sample (and leaving the estimate close enough to the
	// band that the later organic disable decays in 2 samples).
	ctl.Step(adapt.Sample{AnnLen: 2})
	ctl.Step(adapt.Sample{AnnLen: 2})
	if !tr.ShardCombining(0) {
		t.Fatalf("shard 0 still direct after injected clustering (estimate %v)", ctl.Estimate())
	}
	if e, d := tr.AdaptiveStats(); e != 1 || d != 0 {
		t.Fatalf("AdaptiveStats = (%d, %d), want (1, 0)", e, d)
	}

	// Enabled: ops route through rounds. A solo publisher drains size-1
	// rounds, so the same stretch of ops is also the organic thin-spread
	// evidence; the controller must disable within the dwell bound —
	// max(MinDwell, 2) samples (2 = the EWMA's decay distance here) plus
	// one sample of cadence slack.
	bound := cfg.SampleEvery * 4
	for i := int64(0); i < bound; i++ {
		if i%2 == 0 {
			tr.Insert(i % 64)
		} else {
			tr.Delete(i % 64)
		}
	}
	if _, batched, _, _ := tr.CombineStats(); batched == 0 {
		t.Fatal("enabled shard drained no ops through rounds")
	}
	if tr.ShardCombining(0) {
		t.Fatalf("solo publisher still combining after %d ops (estimate %v)", bound, ctl.Estimate())
	}
	if e, d := tr.AdaptiveStats(); e != 1 || d != 1 {
		t.Fatalf("AdaptiveStats = (%d, %d), want (1, 1)", e, d)
	}

	// Other shards never saw signals and must still be direct, untouched.
	for i := 1; i < 4; i++ {
		if tr.ShardCombining(i) {
			t.Fatalf("shard %d flipped without traffic", i)
		}
	}
}

// TestAdaptiveMidFlipStress is the disable-drain stress: a mid-round test
// hook toggles the round's shard mode inside the widest combiner window
// (slots taken, batch not yet applied), an unsynchronized flipper
// goroutine forces modes on every shard, and the aggressive controller
// config keeps organic flips churning underneath. Under -race this is the
// mid-flip linearizability scenario of DESIGN.md §Adaptive combining;
// the quiescent state must still be exact and the slots empty.
func TestAdaptiveMidFlipStress(t *testing.T) {
	for _, k := range shardCounts {
		t.Run(shardLabel(k), func(t *testing.T) {
			const u = int64(1 << 10)
			tr, err := sharded.NewAdaptive(u, k, aggressiveCfg())
			if err != nil {
				t.Fatal(err)
			}
			var flips atomic.Int64
			combine.SetTestHookMidRound(func() {
				n := flips.Add(1)
				tr.ShardController(int(n) % k).ForceMode(n%3 == 0)
			})
			defer combine.SetTestHookMidRound(nil)

			stop := make(chan struct{})
			var flipper sync.WaitGroup
			flipper.Add(1)
			go func() {
				defer flipper.Done()
				rng := rand.New(rand.NewSource(42))
				for {
					select {
					case <-stop:
						return
					default:
						tr.ShardController(rng.Intn(k)).ForceMode(rng.Intn(2) == 0)
					}
				}
			}()

			const goroutines, per = 8, 400
			width := u / goroutines
			var wg sync.WaitGroup
			finals := make([]map[int64]bool, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(id)*101 + 7))
					lo := int64(id) * width
					final := map[int64]bool{}
					for i := 0; i < per; i++ {
						x := lo + rng.Int63n(width)
						switch rng.Intn(5) {
						case 0, 1:
							tr.Insert(x)
							final[x] = true
						case 2:
							tr.Delete(x)
							delete(final, x)
						case 3:
							tr.Search(x)
						case 4:
							if p := tr.Predecessor(x); p >= x {
								t.Errorf("Predecessor(%d) = %d", x, p)
								return
							}
						}
					}
					finals[id] = final
				}(g)
			}
			wg.Wait()
			close(stop)
			flipper.Wait()

			present := map[int64]bool{}
			var n int64
			for _, final := range finals {
				for x := range final {
					present[x] = true
					n++
				}
			}
			for x := int64(0); x < u; x++ {
				if got := tr.Search(x); got != present[x] {
					t.Fatalf("quiescent Search(%d) = %v, want %v", x, got, present[x])
				}
			}
			if got := tr.Len(); got != n {
				t.Fatalf("quiescent Len = %d, want %d", got, n)
			}
			e, d := tr.AdaptiveStats()
			t.Logf("k=%d hook flips=%d organic enables=%d disables=%d", k, flips.Load(), e, d)
		})
	}
}

// TestRelaxedAdaptiveQuiescent drives the relaxed adaptive variant, with
// mid-round forced flips, to a known quiescent state.
func TestRelaxedAdaptiveQuiescent(t *testing.T) {
	for _, k := range []int{1, 4} {
		tr, err := sharded.NewRelaxedAdaptive(256, k, aggressiveCfg())
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Adaptive() {
			t.Fatal("Adaptive() = false")
		}
		var flips atomic.Int64
		combine.SetTestHookMidRound(func() {
			n := flips.Add(1)
			tr.RelaxedShardController(int(n) % k).ForceMode(n%2 == 0)
		})
		defer combine.SetTestHookMidRound(nil)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				lo := int64(id) * 64
				for i := int64(0); i < 64; i++ {
					tr.Insert(lo + i)
				}
				for i := int64(1); i < 64; i += 2 {
					tr.Delete(lo + i)
				}
			}(g)
		}
		wg.Wait()
		for x := int64(0); x < 256; x++ {
			want := x%2 == 0
			if got := tr.Search(x); got != want {
				t.Fatalf("k=%d: Search(%d) = %v, want %v", k, x, got, want)
			}
		}
		if got := tr.Len(); got != 128 {
			t.Fatalf("k=%d: Len = %d, want 128", k, got)
		}
	}
}
