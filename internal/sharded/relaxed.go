// Sharded façade over the wait-free relaxed trie (§4), satisfying the same
// §4.1 contract as the unsharded one: a non-abstaining (k, true) answer
// promises only that k was present at some point during the call and that
// k is exact when no update on a key in (k, y) ran concurrently; ⊥ is
// returned only under such interference. The cross-shard stitch therefore
// needs no version validation — but note the answer distribution is weaker
// than the unsharded implementation's: the scan can return a key from a
// lower shard while a concurrent insert lands unseen in an already-skipped
// shard above it, a definite-but-inexact answer the contract permits
// (there was interference in (k, y)) where the unsharded trie would have
// answered exactly or abstained. At quiescence the occupancy counters are
// exact and every answer is exact.
package sharded

import (
	"fmt"
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/combine"
	"repro/internal/relaxed"
)

// rshard is one relaxed partition: an independent relaxed trie plus its
// occupancy over-approximation, optional combiner and optional adaptive
// controller, padded like shard. pending mirrors shard's in-flight count
// (the relaxed trie has no announcement list, so it is the adaptive
// layer's only direct-mode clustering signal).
type rshard struct {
	trie    *relaxed.Trie
	count   atomic.Int64 // cardinality over-approximation (≥ |S ∩ shard|)
	pending atomic.Int64 // in-flight direct updates
	comb    *combine.Combiner
	ctl     *adapt.Controller
	_       [88]byte
}

// Relaxed is the sharded wait-free relaxed binary trie. Create with
// NewRelaxed; the zero value is not usable.
type Relaxed struct {
	u         int64
	k         int
	width     int64
	shardBits uint
	shards    []rshard
	placement []int // shard→group placement hint; nil when unplaced
}

// NewRelaxed returns an empty sharded relaxed trie over {0,…,u−1} split
// into k contiguous shards, under the same bounds as New.
func NewRelaxed(u int64, k int) (*Relaxed, error) { return newRelaxed(u, k, false, nil) }

// NewRelaxedCombining is NewRelaxed with per-shard combining: updates
// publish to the owning shard's slots and a combiner applies each round
// op by op (the relaxed trie has no announcement lists to amortize; see
// combine.RelaxedSet for when this is still worth it). Batched updates
// trade the §4 per-op wait-freedom for the combiner handoff; queries are
// untouched.
func NewRelaxedCombining(u int64, k int) (*Relaxed, error) { return newRelaxed(u, k, true, nil) }

// NewRelaxedAdaptive is NewRelaxedCombining with per-shard adaptive
// controllers, mirroring NewAdaptive: each shard publishes directly until
// its in-flight update count says publishers are clustering, and combines
// until its drained batches degenerate (with hysteresis and dwell). cfg's
// zero fields take the tuned defaults.
func NewRelaxedAdaptive(u int64, k int, cfg adapt.Config) (*Relaxed, error) {
	return NewRelaxedWithOptions(u, k, Options{Combining: true, Adaptive: &cfg})
}

// NewRelaxedWithOptions mirrors NewWithOptions over the relaxed backend,
// with the same Options semantics (placement requires combining, arena
// carves per placement group, sticky claims).
func NewRelaxedWithOptions(u int64, k int, o Options) (*Relaxed, error) {
	combining := o.Combining || o.Adaptive != nil
	if o.Placement != nil {
		if !combining {
			return nil, fmt.Errorf("sharded: placement requires the combining layer (it shapes publication slots)")
		}
		if err := ValidatePlacement(o.Placement, k); err != nil {
			return nil, err
		}
	}
	pu, width, shardBits, err := geometry(u, k)
	if err != nil {
		return nil, err
	}
	t := &Relaxed{
		u:         pu,
		k:         k,
		width:     width,
		shardBits: shardBits,
		shards:    make([]rshard, k),
	}
	var arenas map[int]*combine.Arena
	var slotsPer int
	if o.Placement != nil {
		sizes := map[int]int{}
		for _, g := range o.Placement {
			sizes[g]++
		}
		slotsPer = placementSlots(len(sizes))
		arenas = make(map[int]*combine.Arena, len(sizes))
		for g, n := range sizes {
			arenas[g] = combine.NewArena(slotsPer * n)
		}
		t.placement = append([]int(nil), o.Placement...)
	}
	for i := range t.shards {
		r, err := relaxed.New(t.width)
		if err != nil {
			return nil, err
		}
		t.shards[i].trie = r
		if combining {
			sh := &t.shards[i]
			apply1 := func(op combine.Op) {
				if op.Del {
					t.deleteDirect(sh, op.Key)
				} else {
					t.insertDirect(sh, op.Key)
				}
			}
			apply := func(ops []combine.Op) {
				for j := range ops {
					apply1(ops[j])
				}
			}
			if arenas != nil {
				sh.comb = combine.NewPlaced(arenas[o.Placement[i]].Carve(slotsPer), apply, apply1)
			} else {
				sh.comb = combine.New(0, apply, apply1)
			}
			if o.Adaptive != nil {
				sh.ctl = adapt.New(*o.Adaptive, combine.Sampler(sh.comb, nil, sh.pending.Load))
			}
		}
	}
	return t, nil
}

func newRelaxed(u int64, k int, combining bool, acfg *adapt.Config) (*Relaxed, error) {
	return NewRelaxedWithOptions(u, k, Options{Combining: combining, Adaptive: acfg})
}

// U returns the (padded) universe size.
func (t *Relaxed) U() int64 { return t.u }

// Shards returns the shard count.
func (t *Relaxed) Shards() int { return t.k }

// Shard exposes shard i's relaxed trie (facade configuration, tests).
func (t *Relaxed) Shard(i int) *relaxed.Trie { return t.shards[i].trie }

// Occupancy returns shard i's cardinality over-approximation; exact at
// quiescence.
func (t *Relaxed) Occupancy(i int) int64 { return t.shards[i].count.Load() }

// Len returns the summed occupancy summary — an O(k) cardinality estimate,
// exact at quiescence.
func (t *Relaxed) Len() int64 {
	var n int64
	for i := range t.shards {
		n += t.shards[i].count.Load()
	}
	return n
}

func (t *Relaxed) home(x int64) (*rshard, int64) {
	return &t.shards[x>>t.shardBits], x & (t.width - 1)
}

// Search reports whether x is in the set. O(1) worst-case.
//
// Precondition: 0 ≤ x < U().
func (t *Relaxed) Search(x int64) bool {
	sh, lx := t.home(x)
	return sh.trie.Search(lx)
}

// Insert adds x to the set. Wait-free, O(log(u/k)) worst-case steps
// (routed through the owning shard's combiner under NewRelaxedCombining).
//
// Precondition: 0 ≤ x < U().
func (t *Relaxed) Insert(x int64) {
	sh, lx := t.home(x)
	if sh.ctl != nil {
		sh.ctl.Tick()
		if sh.ctl.Combining() {
			sh.comb.Submit(combine.Op{Key: lx})
			return
		}
		t.insertDirect(sh, lx)
		return
	}
	if sh.comb != nil {
		sh.comb.Submit(combine.Op{Key: lx})
		return
	}
	t.insertDirect(sh, lx)
}

func (t *Relaxed) insertDirect(sh *rshard, lx int64) {
	// pending feeds only the adaptive controller's direct-mode signal;
	// non-adaptive tries skip the two extra RMWs on the wait-free path.
	adaptive := sh.ctl != nil
	if adaptive {
		sh.pending.Add(1)
	}
	sh.count.Add(1)
	if !sh.trie.Add(lx) {
		sh.count.Add(-1)
	}
	if adaptive {
		sh.pending.Add(-1)
	}
}

// Delete removes x from the set. Wait-free, O(log(u/k)) worst-case steps
// (routed like Insert under NewRelaxedCombining).
//
// Precondition: 0 ≤ x < U().
func (t *Relaxed) Delete(x int64) {
	sh, lx := t.home(x)
	if sh.ctl != nil {
		sh.ctl.Tick()
		if sh.ctl.Combining() {
			sh.comb.Submit(combine.Op{Key: lx, Del: true})
			return
		}
		t.deleteDirect(sh, lx)
		return
	}
	if sh.comb != nil {
		sh.comb.Submit(combine.Op{Key: lx, Del: true})
		return
	}
	t.deleteDirect(sh, lx)
}

func (t *Relaxed) deleteDirect(sh *rshard, lx int64) {
	adaptive := sh.ctl != nil
	if adaptive {
		sh.pending.Add(1)
	}
	if sh.trie.Remove(lx) {
		sh.count.Add(-1)
	}
	if adaptive {
		sh.pending.Add(-1)
	}
}

// Adaptive reports whether per-shard controllers drive the publication
// mode at runtime.
func (t *Relaxed) Adaptive() bool { return t.shards[0].ctl != nil }

// RelaxedShardController returns shard i's adaptive controller, or nil
// (tests, stats).
func (t *Relaxed) RelaxedShardController(i int) *adapt.Controller { return t.shards[i].ctl }

// Placement returns a copy of the placement hint the trie was built with,
// or nil when unplaced.
func (t *Relaxed) Placement() []int {
	if t.placement == nil {
		return nil
	}
	return append([]int(nil), t.placement...)
}

// AdaptiveStats sums the per-shard mode-transition counters (zeros when
// the trie is not adaptive).
func (t *Relaxed) AdaptiveStats() (enables, disables int64) {
	for i := range t.shards {
		if c := t.shards[i].ctl; c != nil {
			e, d := c.Transitions()
			enables += e
			disables += d
		}
	}
	return enables, disables
}

// Predecessor returns the largest key smaller than y under the relaxed
// specification (§4.1): (k, true) for a key present during the call,
// (−1, true) when no key below y was visible, (0, false) for ⊥ when a
// concurrent update interfered. The owning shard is queried first; lower
// shards are scanned for their max, skipping shards whose occupancy
// over-approximation reads zero. Wait-free: O(log(u/k) + k) worst-case
// steps.
//
// Precondition: 0 ≤ y < U().
func (t *Relaxed) Predecessor(y int64) (int64, bool) {
	j := int(y >> t.shardBits)
	ly := y & (t.width - 1)
	if ly > 0 {
		p, ok := t.shards[j].trie.Predecessor(ly)
		if !ok {
			return 0, false
		}
		if p >= 0 {
			return int64(j)<<t.shardBits | p, true
		}
	}
	for i := j - 1; i >= 0; i-- {
		sh := &t.shards[i]
		if sh.count.Load() == 0 {
			continue
		}
		if sh.trie.Search(t.width - 1) {
			return int64(i)<<t.shardBits | (t.width - 1), true
		}
		p, ok := sh.trie.Predecessor(t.width - 1)
		if !ok {
			return 0, false
		}
		if p >= 0 {
			return int64(i)<<t.shardBits | p, true
		}
	}
	return -1, true
}

// Successor returns the smallest key greater than y with the mirrored
// relaxed semantics of Predecessor. Wait-free: O(log(u/k) + k) worst-case
// steps.
//
// Precondition: 0 ≤ y < U().
func (t *Relaxed) Successor(y int64) (int64, bool) {
	j := int(y >> t.shardBits)
	ly := y & (t.width - 1)
	if ly < t.width-1 {
		s, ok := t.shards[j].trie.Successor(ly)
		if !ok {
			return 0, false
		}
		if s >= 0 {
			return int64(j)<<t.shardBits | s, true
		}
	}
	for i := j + 1; i < t.k; i++ {
		sh := &t.shards[i]
		if sh.count.Load() == 0 {
			continue
		}
		if sh.trie.Search(0) {
			return int64(i) << t.shardBits, true
		}
		s, ok := sh.trie.Successor(0)
		if !ok {
			return 0, false
		}
		if s >= 0 {
			return int64(i)<<t.shardBits | s, true
		}
	}
	return -1, true
}
