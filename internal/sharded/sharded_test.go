package sharded_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sharded"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		u  int64
		k  int
		ok bool
	}{
		{64, 1, true},
		{64, 4, true},
		{64, 32, true},
		{64, 64, false}, // width 1 < 2
		{64, 3, false},  // not a power of two
		{64, 0, false},  // below 1
		{64, -4, false}, // negative
		{1, 4, false},   // universe too small
		{1000, 4, true}, // padded to 1024, width 256
		{4, 2, true},    // minimal width
		{64, sharded.MaxShards * 2, false},
	}
	for _, c := range cases {
		_, err := sharded.New(c.u, c.k)
		if (err == nil) != c.ok {
			t.Errorf("New(%d, %d) error = %v, want ok=%v", c.u, c.k, err, c.ok)
		}
	}
	tr, err := sharded.New(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.U() != 1024 || tr.Shards() != 4 || tr.ShardWidth() != 256 {
		t.Errorf("geometry = (%d, %d, %d), want (1024, 4, 256)", tr.U(), tr.Shards(), tr.ShardWidth())
	}
}

// TestShardBoundaries drives keys exactly on shard boundaries: the first
// and last key of every shard, and predecessor queries landing on them from
// both sides, across empty interior shards.
func TestShardBoundaries(t *testing.T) {
	const u, k = 64, 4 // width 16: boundaries at 16, 32, 48
	tr, err := sharded.New(u, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []int64{0, 15, 16, 31, 32, 47, 48, 63} {
		tr.Insert(key)
		if !tr.Search(key) {
			t.Fatalf("Search(%d) = false after insert", key)
		}
	}
	preds := map[int64]int64{
		0: -1, 1: 0, 15: 0, 16: 15, 17: 16, 31: 16, 32: 31,
		33: 32, 47: 32, 48: 47, 49: 48, 63: 48,
	}
	for y, want := range preds {
		if got := tr.Predecessor(y); got != want {
			t.Errorf("Predecessor(%d) = %d, want %d", y, got, want)
		}
	}
	if got := tr.Max(); got != 63 {
		t.Errorf("Max = %d, want 63", got)
	}
	// Hollow out the two middle shards: cross-shard predecessor must skip
	// them and land in shard 0.
	for _, key := range []int64{16, 31, 32, 47} {
		tr.Delete(key)
	}
	for _, y := range []int64{17, 32, 48} {
		if got := tr.Predecessor(y); got != 15 {
			t.Errorf("Predecessor(%d) = %d after hollowing, want 15", y, got)
		}
	}
	if got := tr.Predecessor(63); got != 48 {
		t.Errorf("Predecessor(63) = %d, want 48", got)
	}
	// Drain everything: predecessor from the very top must report -1.
	for _, key := range []int64{0, 15, 48, 63} {
		tr.Delete(key)
	}
	if got := tr.Predecessor(63); got != -1 {
		t.Errorf("Predecessor(63) on empty = %d, want -1", got)
	}
	if got := tr.Max(); got != -1 {
		t.Errorf("Max on empty = %d, want -1", got)
	}
}

// TestOccupancySummary: counters are exact at quiescence, including after
// double inserts/deletes that lose the idempotence race sequentially.
func TestOccupancySummary(t *testing.T) {
	tr, err := sharded.New(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr.Insert(5)
	tr.Insert(5) // idempotent: must not double-count
	tr.Insert(20)
	tr.Delete(33) // absent: must not under-count
	tr.Insert(63)
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	want := []int64{1, 1, 0, 1} // shards of width 16: {5}, {20}, {}, {63}
	for i, w := range want {
		if got := tr.Occupancy(i); got != w {
			t.Errorf("Occupancy(%d) = %d, want %d", i, got, w)
		}
	}
	tr.Delete(5)
	tr.Delete(5)
	if got := tr.Occupancy(0); got != 0 {
		t.Errorf("Occupancy(0) after delete = %d, want 0", got)
	}
}

// TestOccupancyQuiescentAfterChurn hammers every shard from 8 goroutines
// and checks the counters settle to the exact per-shard cardinalities.
func TestOccupancyQuiescentAfterChurn(t *testing.T) {
	const u, k = 256, 16
	tr, err := sharded.New(u, k)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				key := rng.Int63n(u)
				if rng.Intn(2) == 0 {
					tr.Insert(key)
				} else {
					tr.Delete(key)
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	var total int64
	for i := 0; i < k; i++ {
		var inShard int64
		lo := int64(i) * tr.ShardWidth()
		for key := lo; key < lo+tr.ShardWidth(); key++ {
			if tr.Search(key) {
				inShard++
			}
		}
		if got := tr.Occupancy(i); got != inShard {
			t.Errorf("Occupancy(%d) = %d, want %d", i, got, inShard)
		}
		total += inShard
	}
	if got := tr.Len(); got != total {
		t.Errorf("Len = %d, want %d", got, total)
	}
}

// TestCrossShardPredecessorUnderChurn keeps two stable sentinel keys in the
// bottom shard while upper shards churn; cross-shard fallbacks must never
// miss the sentinels nor fabricate keys.
func TestCrossShardPredecessorUnderChurn(t *testing.T) {
	const u, k = 256, 16 // width 16
	tr, err := sharded.New(u, k)
	if err != nil {
		t.Fatal(err)
	}
	tr.Insert(3)
	tr.Insert(7)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					key := 64 + rng.Int63n(128) // shards 4–11
					tr.Insert(key)
					tr.Delete(key)
				}
			}
		}(int64(g) + 1)
	}
	for i := 0; i < 4000; i++ {
		// Query from shard 3 (empty, between sentinels and churn band):
		// the answer must be exactly 7 whatever the churners do.
		if got := tr.Predecessor(48); got != 7 {
			t.Fatalf("Predecessor(48) = %d, want 7", got)
		}
		// Query from the top: any churn-band key is legal, but a miss must
		// fall through to the sentinel 7, never to 3 or -1.
		got := tr.Predecessor(255)
		if got != 7 && !(got >= 64 && got < 192) {
			t.Fatalf("Predecessor(255) = %d, want 7 or a churn-band key", got)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRelaxedShardedQuiescent(t *testing.T) {
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			const u = 64
			tr, err := sharded.NewRelaxed(u, k)
			if err != nil {
				t.Fatal(err)
			}
			ref := make(map[int64]bool)
			rng := rand.New(rand.NewSource(7))
			for step := 0; step < 4000; step++ {
				key := rng.Int63n(u)
				switch rng.Intn(4) {
				case 0:
					tr.Insert(key)
					ref[key] = true
				case 1:
					tr.Delete(key)
					delete(ref, key)
				case 2:
					if got := tr.Search(key); got != ref[key] {
						t.Fatalf("step %d: Search(%d) = %v, want %v", step, key, got, ref[key])
					}
				case 3:
					wantP, wantS := int64(-1), int64(-1)
					for c := key - 1; c >= 0; c-- {
						if ref[c] {
							wantP = c
							break
						}
					}
					for c := key + 1; c < u; c++ {
						if ref[c] {
							wantS = c
							break
						}
					}
					// Quiescent: abstention is not allowed (§4.1).
					if got, ok := tr.Predecessor(key); !ok || got != wantP {
						t.Fatalf("step %d: Predecessor(%d) = (%d,%v), want (%d,true)", step, key, got, ok, wantP)
					}
					if got, ok := tr.Successor(key); !ok || got != wantS {
						t.Fatalf("step %d: Successor(%d) = (%d,%v), want (%d,true)", step, key, got, ok, wantS)
					}
				}
			}
		})
	}
}

// TestRelaxedShardedConcurrent checks the relaxed contract under real
// concurrency: non-abstaining answers must respect the query bound, and at
// quiescence the occupancy summary and answers become exact again.
func TestRelaxedShardedConcurrent(t *testing.T) {
	const u, k = 256, 16
	tr, err := sharded.NewRelaxed(u, k)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(id*13 + 1))
			lo := id * (u / 8)
			for i := 0; i < 2000; i++ {
				key := lo + rng.Int63n(u/8)
				switch rng.Intn(4) {
				case 0:
					tr.Insert(key)
				case 1:
					tr.Delete(key)
				case 2:
					tr.Search(key)
				default:
					if p, ok := tr.Predecessor(key); ok && p >= key {
						t.Errorf("Predecessor(%d) = %d ≥ y", key, p)
						return
					}
					if s, ok := tr.Successor(key); ok && s != -1 && s <= key {
						t.Errorf("Successor(%d) = %d ≤ y", key, s)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	tr.Insert(100)
	if p, ok := tr.Predecessor(101); !ok || p != 100 {
		t.Errorf("quiescent Predecessor(101) = (%d,%v), want (100,true)", p, ok)
	}
	var total int64
	for i := 0; i < k; i++ {
		total += tr.Occupancy(i)
	}
	var present int64
	for key := int64(0); key < u; key++ {
		if tr.Search(key) {
			present++
		}
	}
	if total != present {
		t.Errorf("summed occupancy = %d, want %d", total, present)
	}
}
