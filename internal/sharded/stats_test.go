package sharded_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bitstrie"
	"repro/internal/core"
	"repro/internal/sharded"
)

// statsSnapshot flattens the per-shard core.Stats / bitstrie.Stats counters
// into one comparable vector.
type statsSnapshot struct {
	notifications, bottomCases, helpActivations    int64
	uallSteps, ruallSteps                          int64
	bitReads, casAttempts, casFailures, casRescues int64
	minWrites, traversalSteps                      int64
}

func snapshot(cs []*core.Stats, bs []*bitstrie.Stats) statsSnapshot {
	var s statsSnapshot
	for _, c := range cs {
		s.notifications += c.Notifications.Load()
		s.bottomCases += c.BottomCases.Load()
		s.helpActivations += c.HelpActivations.Load()
		s.uallSteps += c.UallTraversalSteps.Load()
		s.ruallSteps += c.RuallTraversalSteps.Load()
	}
	for _, b := range bs {
		s.bitReads += b.BitReads.Load()
		s.casAttempts += b.CASAttempts.Load()
		s.casFailures += b.CASFailures.Load()
		s.casRescues += b.SecondCASSuccess.Load()
		s.minWrites += b.MinWrites.Load()
		s.traversalSteps += b.TraversalSteps.Load()
	}
	return s
}

func (s statsSnapshot) fields() []int64 {
	return []int64{
		s.notifications, s.bottomCases, s.helpActivations, s.uallSteps,
		s.ruallSteps, s.bitReads, s.casAttempts, s.casFailures,
		s.casRescues, s.minWrites, s.traversalSteps,
	}
}

var statsFieldNames = []string{
	"Notifications", "BottomCases", "HelpActivations", "UallTraversalSteps",
	"RuallTraversalSteps", "BitReads", "CASAttempts", "CASFailures",
	"SecondCASSuccess", "MinWrites", "TraversalSteps",
}

// TestStatsCountersUnderConcurrency runs a mixed workload against an
// instrumented trie at k ∈ {1, 16} and checks the counter vector for
// consistency: non-negative, monotone between a mid-run and a final
// sample, and within bounds that must hold for any schedule.
func TestStatsCountersUnderConcurrency(t *testing.T) {
	for _, k := range []int{1, 16} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			const (
				u            = int64(1 << 10)
				workers      = 4
				opsPerWorker = 4000
			)
			tr, err := sharded.New(u, k)
			if err != nil {
				t.Fatal(err)
			}
			cs := make([]*core.Stats, k)
			bs := make([]*bitstrie.Stats, k)
			for i := 0; i < k; i++ {
				cs[i] = &core.Stats{}
				bs[i] = &bitstrie.Stats{}
				tr.Shard(i).SetStats(cs[i])
				tr.Shard(i).Bits().SetStats(bs[i])
			}

			var wg sync.WaitGroup
			mid := make(chan statsSnapshot, 1)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < opsPerWorker; i++ {
						x := rng.Int63n(u)
						switch rng.Intn(4) {
						case 0:
							tr.Insert(x)
						case 1:
							tr.Delete(x)
						case 2:
							tr.Search(x)
						default:
							tr.Predecessor(x)
						}
						if seed == 1 && i == opsPerWorker/2 {
							mid <- snapshot(cs, bs)
						}
					}
				}(int64(w + 1))
			}
			wg.Wait()
			midSnap := <-mid
			final := snapshot(cs, bs)

			// Non-negative and monotone: the counters are add-only.
			for i, v := range midSnap.fields() {
				if v < 0 {
					t.Errorf("%s mid-run = %d, negative", statsFieldNames[i], v)
				}
				if fv := final.fields()[i]; fv < v {
					t.Errorf("%s not monotone: mid %d > final %d", statsFieldNames[i], v, fv)
				}
			}

			// Plausibility bounds that hold for any schedule.
			totalOps := int64(workers * opsPerWorker)
			// Every winning Delete runs two embedded predecessors, so at
			// most 3 predecessor announcements per op drive ⊥ recoveries.
			if final.bottomCases > 3*totalOps {
				t.Errorf("BottomCases = %d > 3×ops", final.bottomCases)
			}
			if final.casFailures > final.casAttempts {
				t.Errorf("CASFailures %d > CASAttempts %d", final.casFailures, final.casAttempts)
			}
			if final.casRescues > final.casFailures {
				t.Errorf("SecondCASSuccess %d > CASFailures %d", final.casRescues, final.casFailures)
			}
			// The workload runs real updates and predecessors, so the
			// engine counters cannot all be silent.
			if final.bitReads == 0 || final.casAttempts == 0 || final.traversalSteps == 0 {
				t.Errorf("engine counters silent: bitReads=%d casAttempts=%d traversalSteps=%d",
					final.bitReads, final.casAttempts, final.traversalSteps)
			}
			if final.ruallSteps == 0 {
				t.Errorf("RuallTraversalSteps = 0 despite predecessor traffic")
			}

			// Quiesced now: Len must be exact. Count by membership.
			var want int64
			for x := int64(0); x < u; x++ {
				if tr.Search(x) {
					want++
				}
			}
			if got := tr.Len(); got != want {
				t.Errorf("quiescent Len = %d, want %d", got, want)
			}
		})
	}
}
