package sharded_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sharded"
)

// TestCombiningQuiescentState drives disjoint-range goroutines through the
// combining trie at several shard counts and verifies the exact quiescent
// state plus clean occupancy counters.
func TestCombiningQuiescentState(t *testing.T) {
	for _, k := range []int{1, 4, 16} {
		k := k
		t.Run(shardLabel(k), func(t *testing.T) {
			const u = int64(1 << 10)
			tr, err := sharded.NewCombining(u, k)
			if err != nil {
				t.Fatal(err)
			}
			if !tr.Combining() {
				t.Fatal("Combining() = false")
			}
			const goroutines = 8
			width := u / goroutines
			var wg sync.WaitGroup
			finals := make([]map[int64]bool, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(id)*7 + 3))
					lo := int64(id) * width
					final := map[int64]bool{}
					for i := 0; i < 400; i++ {
						x := lo + rng.Int63n(width)
						switch rng.Intn(5) {
						case 0, 1:
							tr.Insert(x)
							final[x] = true
						case 2:
							tr.Delete(x)
							delete(final, x)
						case 3:
							tr.Search(x)
						case 4:
							if p := tr.Predecessor(x); p >= x {
								t.Errorf("Predecessor(%d) = %d", x, p)
								return
							}
						}
					}
					finals[id] = final
				}(g)
			}
			wg.Wait()
			present := map[int64]bool{}
			var n int64
			for _, final := range finals {
				for x := range final {
					present[x] = true
					n++
				}
			}
			for x := int64(0); x < u; x++ {
				if got := tr.Search(x); got != present[x] {
					t.Fatalf("quiescent Search(%d) = %v, want %v", x, got, present[x])
				}
			}
			if got := tr.Len(); got != n {
				t.Fatalf("quiescent Len = %d, want %d", got, n)
			}
			rounds, batched, direct, maxBatch := tr.CombineStats()
			t.Logf("k=%d rounds=%d batched=%d direct=%d max=%d", k, rounds, batched, direct, maxBatch)
		})
	}
}

func shardLabel(k int) string {
	switch k {
	case 1:
		return "shards=1"
	case 4:
		return "shards=4"
	default:
		return "shards=16"
	}
}

// TestShardedApplyBatch checks the global-key split, rebase, counter
// discipline and Won flags across shard boundaries.
func TestShardedApplyBatch(t *testing.T) {
	for _, k := range []int{1, 4, 16} {
		tr, err := sharded.New(64, k)
		if err != nil {
			t.Fatal(err)
		}
		tr.Insert(10)
		ops := []core.BatchOp{
			{Key: 3}, {Key: 10}, {Key: 17, Del: true}, {Key: 33}, {Key: 60},
		}
		tr.ApplyBatch(ops)
		wantWon := []bool{true, false, false, true, true}
		for i, w := range wantWon {
			if ops[i].Won != w {
				t.Fatalf("k=%d: ops[%d].Won = %v, want %v", k, i, ops[i].Won, w)
			}
		}
		for _, x := range []int64{3, 10, 33, 60} {
			if !tr.Search(x) {
				t.Fatalf("k=%d: Search(%d) = false after batch", k, x)
			}
		}
		if got := tr.Len(); got != 4 {
			t.Fatalf("k=%d: Len = %d, want 4", k, got)
		}
		// Batch deletes spanning shards.
		ops = []core.BatchOp{{Key: 3, Del: true}, {Key: 33, Del: true}}
		tr.ApplyBatch(ops)
		if !ops[0].Won || !ops[1].Won {
			t.Fatalf("k=%d: delete batch Won = %v %v", k, ops[0].Won, ops[1].Won)
		}
		if got := tr.Len(); got != 2 {
			t.Fatalf("k=%d: Len = %d after deletes, want 2", k, got)
		}
	}
}

// TestShardedSuccessor checks the stitched successor at several shard
// geometries, quiescently, against a reference scan.
func TestShardedSuccessor(t *testing.T) {
	for _, k := range []int{1, 4, 16} {
		const u = int64(64)
		tr, err := sharded.New(u, k)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[int64]bool{}
		rng := rand.New(rand.NewSource(int64(k)))
		for i := 0; i < 200; i++ {
			x := rng.Int63n(u)
			if rng.Intn(3) == 0 {
				tr.Delete(x)
				delete(ref, x)
			} else {
				tr.Insert(x)
				ref[x] = true
			}
			if i%20 != 19 {
				continue
			}
			for y := int64(0); y < u; y++ {
				want := int64(-1)
				for c := y + 1; c < u; c++ {
					if ref[c] {
						want = c
						break
					}
				}
				if got := tr.Successor(y); got != want {
					t.Fatalf("k=%d: Successor(%d) = %d, want %d", k, y, got, want)
				}
			}
		}
	}
}

// TestRelaxedCombining drives the combining relaxed variant to a known
// quiescent state.
func TestRelaxedCombining(t *testing.T) {
	for _, k := range []int{1, 4} {
		tr, err := sharded.NewRelaxedCombining(256, k)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				lo := int64(id) * 64
				for i := int64(0); i < 64; i++ {
					tr.Insert(lo + i)
				}
				for i := int64(1); i < 64; i += 2 {
					tr.Delete(lo + i)
				}
			}(g)
		}
		wg.Wait()
		for x := int64(0); x < 256; x++ {
			want := x%2 == 0
			if got := tr.Search(x); got != want {
				t.Fatalf("k=%d: Search(%d) = %v, want %v", k, x, got, want)
			}
		}
		if got := tr.Len(); got != 128 {
			t.Fatalf("k=%d: Len = %d, want 128", k, got)
		}
	}
}
