// Package efrb implements the lock-free leaf-oriented binary search tree of
// Ellen, Fatourou, Ruppert and van Breugel ("Non-blocking binary search
// trees", PODC 2010) — reference [23] of the paper, described in §3 as "the
// first provably correct lock-free implementation of an unbalanced binary
// search tree using CAS".
//
// The technique reproduced here is the one the paper contrasts its own
// helping style against: every update flags a constant number of nodes with
// an operation record before performing a single child-pointer CAS, and any
// process that encounters a flag helps that operation to completion.
//
//   - Insert: IFLAG the parent, swing its child pointer to a freshly built
//     internal node, unflag.
//   - Delete: DFLAG the grandparent, MARK the parent (permanently), swing
//     the grandparent's child to the sibling, unflag. A failed mark
//     backtracks by unflagging the grandparent.
//
// All keys live at leaves; internal nodes are routing nodes whose left
// subtree holds keys strictly smaller than their key. Two sentinel keys
// (∞₁ < ∞₂) pad the right spine. As an unbalanced tree its height is O(n)
// worst case; the comparison experiments use random keys.
package efrb

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Update states (the EFRB state ∈ {CLEAN, IFLAG, DFLAG, MARK}).
const (
	stateClean uint8 = iota
	stateIFlag
	stateDFlag
	stateMark
)

const (
	inf1 = math.MaxInt64 - 1
	inf2 = math.MaxInt64
)

// updateRec is the (state, info) pair CAS'd as one unit; a nil pointer in
// tnode.update reads as CLEAN with no record.
type updateRec struct {
	state uint8
	info  any // *insertInfo or *deleteInfo
}

// tnode is a tree node; leaves have leaf=true and never change.
type tnode struct {
	key    int64
	leaf   bool
	update atomic.Pointer[updateRec]
	left   atomic.Pointer[tnode]
	right  atomic.Pointer[tnode]
}

// insertInfo is the operation record of an Insert (EFRB IInfo).
type insertInfo struct {
	p           *tnode
	newInternal *tnode
	l           *tnode
}

// deleteInfo is the operation record of a Delete (EFRB DInfo).
type deleteInfo struct {
	gp, p, l *tnode
	pupdate  *updateRec
}

// Tree is the lock-free BST over int64 keys in [0, u). Safe for concurrent
// use.
type Tree struct {
	root *tnode
	u    int64
}

// New returns an empty tree for keys {0,…,u−1}.
func New(u int64) (*Tree, error) {
	if u < 2 {
		return nil, fmt.Errorf("efrb: universe size %d, need at least 2", u)
	}
	root := &tnode{key: inf2}
	root.left.Store(&tnode{key: inf1, leaf: true})
	root.right.Store(&tnode{key: inf2, leaf: true})
	return &Tree{root: root, u: u}, nil
}

// U returns the universe size.
func (t *Tree) U() int64 { return t.u }

// search is the EFRB Search: returns the grandparent, parent and leaf on
// k's search path plus the update records read at gp and p BEFORE reading
// their child pointers (the ordering the helping protocol depends on).
func (t *Tree) search(k int64) (gp, p, l *tnode, pupdate, gpupdate *updateRec) {
	l = t.root
	for !l.leaf {
		gp, p = p, l
		gpupdate = pupdate
		pupdate = p.update.Load()
		if k < l.key {
			l = p.left.Load()
		} else {
			l = p.right.Load()
		}
	}
	return gp, p, l, pupdate, gpupdate
}

// Search reports membership of x.
func (t *Tree) Search(x int64) bool {
	_, _, l, _, _ := t.search(x)
	return l.key == x
}

func stateOf(u *updateRec) uint8 {
	if u == nil {
		return stateClean
	}
	return u.state
}

// Insert adds x; no-op if present. Lock-free.
func (t *Tree) Insert(x int64) {
	newLeaf := &tnode{key: x, leaf: true}
	for {
		_, p, l, pupdate, _ := t.search(x)
		if l.key == x {
			return // already present
		}
		if stateOf(pupdate) != stateClean {
			t.help(pupdate)
			continue
		}
		// Build the replacement internal node over {x, l.key}.
		newInternal := &tnode{key: maxInt64(x, l.key)}
		other := &tnode{key: l.key, leaf: true}
		if newLeaf.key < other.key {
			newInternal.left.Store(newLeaf)
			newInternal.right.Store(other)
		} else {
			newInternal.left.Store(other)
			newInternal.right.Store(newLeaf)
		}
		op := &insertInfo{p: p, newInternal: newInternal, l: l}
		flag := &updateRec{state: stateIFlag, info: op}
		if p.update.CompareAndSwap(pupdate, flag) {
			t.helpInsert(op)
			return
		}
		t.help(p.update.Load())
	}
}

// helpInsert completes an IFLAG'd insert: child CAS then unflag.
func (t *Tree) helpInsert(op *insertInfo) {
	t.casChild(op.p, op.l, op.newInternal)
	// Unflag: only the exact flag record is replaced.
	cur := op.p.update.Load()
	if cur != nil && cur.state == stateIFlag && cur.info == any(op) {
		op.p.update.CompareAndSwap(cur, &updateRec{state: stateClean, info: op})
	}
}

// Delete removes x; no-op if absent. Lock-free.
func (t *Tree) Delete(x int64) {
	for {
		gp, p, l, pupdate, gpupdate := t.search(x)
		if l.key != x {
			return // absent
		}
		if stateOf(gpupdate) != stateClean {
			t.help(gpupdate)
			continue
		}
		if stateOf(pupdate) != stateClean {
			t.help(pupdate)
			continue
		}
		op := &deleteInfo{gp: gp, p: p, l: l, pupdate: pupdate}
		flag := &updateRec{state: stateDFlag, info: op}
		if gp.update.CompareAndSwap(gpupdate, flag) {
			if t.helpDelete(op) {
				return
			}
		} else {
			t.help(gp.update.Load())
		}
	}
}

// helpDelete tries to MARK the parent; on success the delete is committed
// and finished by helpMarked. On failure (someone else won p's update
// word) it helps the winner and backtracks by unflagging the grandparent.
func (t *Tree) helpDelete(op *deleteInfo) bool {
	mark := &updateRec{state: stateMark, info: op}
	if op.p.update.CompareAndSwap(op.pupdate, mark) {
		t.helpMarked(op)
		return true
	}
	cur := op.p.update.Load()
	if cur != nil && cur.state == stateMark && cur.info == any(op) {
		// Another helper already marked for this very operation.
		t.helpMarked(op)
		return true
	}
	t.help(cur)
	// Backtrack: remove our DFLAG so the grandparent is usable again.
	gpCur := op.gp.update.Load()
	if gpCur != nil && gpCur.state == stateDFlag && gpCur.info == any(op) {
		op.gp.update.CompareAndSwap(gpCur, &updateRec{state: stateClean, info: op})
	}
	return false
}

// helpMarked finishes a committed delete: splice the sibling into the
// grandparent and unflag it.
func (t *Tree) helpMarked(op *deleteInfo) {
	// The sibling of l under p.
	var sibling *tnode
	if r := op.p.right.Load(); r == op.l {
		sibling = op.p.left.Load()
	} else {
		sibling = r
	}
	t.casChild(op.gp, op.p, sibling)
	cur := op.gp.update.Load()
	if cur != nil && cur.state == stateDFlag && cur.info == any(op) {
		op.gp.update.CompareAndSwap(cur, &updateRec{state: stateClean, info: op})
	}
}

// help dispatches on an operation record found in someone's update word.
func (t *Tree) help(u *updateRec) {
	if u == nil {
		return
	}
	switch u.state {
	case stateIFlag:
		if op, ok := u.info.(*insertInfo); ok {
			t.helpInsert(op)
		}
	case stateMark:
		if op, ok := u.info.(*deleteInfo); ok {
			t.helpMarked(op)
		}
	case stateDFlag:
		if op, ok := u.info.(*deleteInfo); ok {
			t.helpDelete(op)
		}
	}
}

// casChild swings parent's child pointer from old to new on the side new
// belongs (EFRB CAS-Child).
func (t *Tree) casChild(parent, old, new *tnode) {
	if new.key < parent.key {
		parent.left.CompareAndSwap(old, new)
	} else {
		parent.right.CompareAndSwap(old, new)
	}
}

// Predecessor returns the largest key smaller than y, or −1. It walks the
// search path remembering the last left subtree passed on the right, then
// descends that subtree's right spine — the standard leaf-oriented BST
// predecessor. Baseline-grade consistency (like the skip-list baseline):
// exact at quiescence, best-effort under concurrent restructuring.
func (t *Tree) Predecessor(y int64) int64 {
	var cand *tnode
	cur := t.root
	for !cur.leaf {
		if cur.key >= y {
			// Right subtree keys ≥ cur.key ≥ y: everything useful is left.
			cur = cur.left.Load()
			continue
		}
		// cur.key < y: the whole left subtree (keys < cur.key) qualifies;
		// the right subtree may hold keys in [cur.key, y).
		cand = cur.left.Load()
		cur = cur.right.Load()
	}
	if cur.key < y && cur.key < inf1 {
		return cur.key
	}
	if cand == nil {
		return -1
	}
	for !cand.leaf {
		cand = cand.right.Load()
	}
	if cand.key < y && cand.key < inf1 {
		return cand.key
	}
	return -1
}

// Len counts the keys; O(n), for tests.
func (t *Tree) Len() int {
	var walk func(n *tnode) int
	walk = func(n *tnode) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			if n.key < inf1 {
				return 1
			}
			return 0
		}
		return walk(n.left.Load()) + walk(n.right.Load())
	}
	return walk(t.root)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
