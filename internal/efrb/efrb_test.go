package efrb_test

import (
	"sync"
	"testing"

	"repro/internal/efrb"
	"repro/internal/settest"
)

func factory(u int64) (settest.Set, error) { return efrb.New(u) }

func TestSequentialConformance(t *testing.T) { settest.RunSequential(t, factory, 64) }
func TestEdgeCases(t *testing.T)             { settest.RunEdgeCases(t, factory, 32) }
func TestConcurrent(t *testing.T)            { settest.RunConcurrent(t, factory, 256, 8, 1200) }

func TestNewValidation(t *testing.T) {
	if _, err := efrb.New(1); err == nil {
		t.Error("New(1) should fail")
	}
	tr, err := efrb.New(64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.U() != 64 {
		t.Errorf("U = %d, want 64", tr.U())
	}
}

func TestLen(t *testing.T) {
	tr, err := efrb.New(64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("empty Len = %d", tr.Len())
	}
	for _, k := range []int64{5, 1, 9, 5} {
		tr.Insert(k)
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	tr.Delete(1)
	tr.Delete(1)
	if got := tr.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// TestConcurrentSameKeyChurn exercises the IFLAG/DFLAG/MARK helping
// protocol on a single contended key with concurrent membership reads.
func TestConcurrentSameKeyChurn(t *testing.T) {
	tr, err := efrb.New(16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			tr.Insert(7)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			tr.Delete(7)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			tr.Search(7)
			tr.Predecessor(9)
		}
	}()
	wg.Wait()
	tr.Insert(7)
	if !tr.Search(7) || tr.Len() != 1 {
		t.Fatalf("after churn: Search=%v Len=%d", tr.Search(7), tr.Len())
	}
	tr.Delete(7)
	if tr.Search(7) || tr.Len() != 0 {
		t.Fatalf("after drain: Search=%v Len=%d", tr.Search(7), tr.Len())
	}
}

// TestConcurrentNeighborDeletes: deletes whose flag targets overlap
// (parent/grandparent of adjacent leaves) must all complete via helping.
func TestConcurrentNeighborDeletes(t *testing.T) {
	for round := 0; round < 150; round++ {
		tr, err := efrb.New(32)
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 16; k++ {
			tr.Insert(k)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for k := int64(0); k < 16; k++ {
			wg.Add(1)
			go func(key int64) {
				defer wg.Done()
				<-start
				tr.Delete(key)
			}(k)
		}
		close(start)
		wg.Wait()
		if got := tr.Len(); got != 0 {
			t.Fatalf("round %d: Len = %d after deleting everything", round, got)
		}
		if got := tr.Predecessor(31); got != -1 {
			t.Fatalf("round %d: Predecessor(31) = %d, want -1", round, got)
		}
	}
}

// TestStableFloorUnderChurn: churn above the floor never hides it from
// predecessor queries.
func TestStableFloorUnderChurn(t *testing.T) {
	tr, err := efrb.New(64)
	if err != nil {
		t.Fatal(err)
	}
	tr.Insert(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Insert(40)
				tr.Delete(40)
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		if got := tr.Predecessor(10); got != 2 {
			t.Errorf("Predecessor(10) = %d, want 2", got)
			break
		}
	}
	close(stop)
	wg.Wait()
}
