// Package settest provides a reusable conformance suite for the dynamic-set
// implementations in this repository. Every concurrent set (the lock-free
// trie, the relaxed trie driven at quiescence, and the three baselines) runs
// the same sequential semantics checks and the same concurrent
// disjoint-range stress with quiescent verification.
package settest

import (
	"math/rand"
	"sync"
	"testing"
)

// Set is the common dynamic-set-with-predecessor interface.
type Set interface {
	Search(x int64) bool
	Insert(x int64)
	Delete(x int64)
	Predecessor(y int64) int64
}

// Factory creates an empty set over {0,…,u−1}.
type Factory func(u int64) (Set, error)

// RunSequential exercises single-threaded semantics against a map-based
// reference with deterministic pseudo-random workloads.
func RunSequential(t *testing.T, newSet Factory, u int64) {
	t.Helper()
	s, err := newSet(u)
	if err != nil {
		t.Fatalf("factory(%d): %v", u, err)
	}
	ref := make(map[int64]bool, u)
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 4000; step++ {
		k := rng.Int63n(u)
		switch rng.Intn(4) {
		case 0:
			s.Insert(k)
			ref[k] = true
		case 1:
			s.Delete(k)
			delete(ref, k)
		case 2:
			if got := s.Search(k); got != ref[k] {
				t.Fatalf("step %d: Search(%d) = %v, want %v", step, k, got, ref[k])
			}
		case 3:
			want := int64(-1)
			for c := k - 1; c >= 0; c-- {
				if ref[c] {
					want = c
					break
				}
			}
			if got := s.Predecessor(k); got != want {
				t.Fatalf("step %d: Predecessor(%d) = %d, want %d", step, k, got, want)
			}
		}
	}
}

// RunEdgeCases exercises boundary keys and empty/full states.
func RunEdgeCases(t *testing.T, newSet Factory, u int64) {
	t.Helper()
	s, err := newSet(u)
	if err != nil {
		t.Fatalf("factory(%d): %v", u, err)
	}
	if s.Search(0) || s.Search(u-1) {
		t.Fatal("empty set reports membership")
	}
	if got := s.Predecessor(u - 1); got != -1 {
		t.Fatalf("Predecessor on empty = %d, want -1", got)
	}
	s.Insert(0)
	s.Insert(u - 1)
	if !s.Search(0) || !s.Search(u-1) {
		t.Fatal("boundary keys missing after insert")
	}
	if got := s.Predecessor(u - 1); got != 0 {
		t.Fatalf("Predecessor(%d) = %d, want 0", u-1, got)
	}
	if got := s.Predecessor(1); got != 0 {
		t.Fatalf("Predecessor(1) = %d, want 0", got)
	}
	if got := s.Predecessor(0); got != -1 {
		t.Fatalf("Predecessor(0) = %d, want -1", got)
	}
	s.Delete(0)
	if got := s.Predecessor(u - 1); got != -1 {
		t.Fatalf("Predecessor(%d) = %d, want -1 after delete", u-1, got)
	}
	// Fill and drain completely.
	for k := int64(0); k < u; k++ {
		s.Insert(k)
	}
	for y := int64(1); y < u; y++ {
		if got := s.Predecessor(y); got != y-1 {
			t.Fatalf("full set: Predecessor(%d) = %d, want %d", y, got, y-1)
		}
	}
	for k := int64(0); k < u; k++ {
		s.Delete(k)
	}
	for y := int64(0); y < u; y++ {
		if s.Search(y) {
			t.Fatalf("drained set still contains %d", y)
		}
	}
}

// RunConcurrent drives goroutines over disjoint key ranges and verifies the
// quiescent state exactly, plus sanity of concurrent predecessor answers.
func RunConcurrent(t *testing.T, newSet Factory, u int64, goroutines, opsPerG int) {
	t.Helper()
	s, err := newSet(u)
	if err != nil {
		t.Fatalf("factory(%d): %v", u, err)
	}
	var wg sync.WaitGroup
	finals := make([]map[int64]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*31 + 5))
			lo := int64(id) * (u / int64(goroutines))
			hi := lo + u/int64(goroutines)
			final := map[int64]bool{}
			for i := 0; i < opsPerG; i++ {
				k := lo + rng.Int63n(hi-lo)
				switch rng.Intn(5) {
				case 0, 1:
					s.Insert(k)
					final[k] = true
				case 2:
					s.Delete(k)
					delete(final, k)
				case 3:
					s.Search(k)
				case 4:
					y := lo + rng.Int63n(hi-lo)
					if got := s.Predecessor(y); got >= y {
						t.Errorf("Predecessor(%d) = %d ≥ y", y, got)
						return
					}
				}
			}
			finals[id] = final
		}(g)
	}
	wg.Wait()
	present := map[int64]bool{}
	for _, final := range finals {
		for k := range final {
			present[k] = true
		}
	}
	for y := int64(0); y < u; y++ {
		if got := s.Search(y); got != present[y] {
			t.Fatalf("quiescent Search(%d) = %v, want %v", y, got, present[y])
		}
		want := int64(-1)
		for k := y - 1; k >= 0; k-- {
			if present[k] {
				want = k
				break
			}
		}
		if got := s.Predecessor(y); got != want {
			t.Fatalf("quiescent Predecessor(%d) = %d, want %d", y, got, want)
		}
	}
}
