package lockfreetrie_test

import (
	"fmt"
	"sync"
	"testing"

	lockfreetrie "repro"
)

// shardCounts runs every range test against the unsharded trie and two
// sharded geometries; with u=64 and k=16 the shards are 4 keys wide, so
// Range/Keys scans constantly cross shard boundaries.
var shardCounts = []int{1, 4, 16}

func forEachShardCount(t *testing.T, fn func(t *testing.T, k int)) {
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) { fn(t, k) })
	}
}

func TestRangeBasic(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		tr, err := lockfreetrie.New(64, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int64{2, 5, 9, 30, 61} {
			if err := tr.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
		got, err := tr.Keys(0, 63)
		if err != nil {
			t.Fatal(err)
		}
		want := []int64{2, 5, 9, 30, 61}
		if len(got) != len(want) {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Keys = %v, want %v", got, want)
			}
		}

		got, _ = tr.Keys(5, 30) // inclusive bounds
		if len(got) != 3 || got[0] != 5 || got[2] != 30 {
			t.Fatalf("Keys(5,30) = %v, want [5 9 30]", got)
		}
		got, _ = tr.Keys(10, 29) // empty interior
		if len(got) != 0 {
			t.Fatalf("Keys(10,29) = %v, want empty", got)
		}
	})
}

// TestRangeAcrossShardBoundaries pins keys to the first/last slot of
// several width-4 shards and scans across them.
func TestRangeAcrossShardBoundaries(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		tr, err := lockfreetrie.New(64, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		want := []int64{3, 4, 7, 8, 31, 32, 60, 63}
		for _, k := range want {
			if err := tr.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
		got, err := tr.Keys(0, 63)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Keys = %v, want %v", got, want)
			}
		}
		// Sub-range cut exactly on shard boundaries.
		got, _ = tr.Keys(4, 32)
		if len(got) != 5 || got[0] != 4 || got[4] != 32 {
			t.Fatalf("Keys(4,32) = %v, want [4 7 8 31 32]", got)
		}
	})
}

func TestRangeEarlyStop(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		tr, err := lockfreetrie.New(32, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 10; k++ {
			tr.Insert(k)
		}
		var visited []int64
		err = tr.Range(0, 31, func(k int64) bool {
			visited = append(visited, k)
			return len(visited) < 3
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(visited) != 3 || visited[0] != 9 || visited[2] != 7 {
			t.Fatalf("visited = %v, want [9 8 7]", visited)
		}
	})
}

func TestRangeIncludesKeyZero(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		tr, err := lockfreetrie.New(32, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		tr.Insert(0)
		tr.Insert(3)
		got, _ := tr.Keys(0, 31)
		if len(got) != 2 || got[0] != 0 || got[1] != 3 {
			t.Fatalf("Keys = %v, want [0 3]", got)
		}
	})
}

func TestRangeValidation(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		tr, err := lockfreetrie.New(32, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Range(-1, 5, func(int64) bool { return true }); err == nil {
			t.Error("negative lo accepted")
		}
		if err := tr.Range(0, 32, func(int64) bool { return true }); err == nil {
			t.Error("hi ≥ universe accepted")
		}
		if _, err := tr.Keys(0, 99); err == nil {
			t.Error("Keys with bad hi accepted")
		}
	})
}

// TestRangeWeakConsistency: keys outside the churn band and present
// throughout must always be visited, whatever happens inside the band.
func TestRangeWeakConsistency(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		tr, err := lockfreetrie.New(64, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		tr.Insert(2)
		tr.Insert(60)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tr.Insert(30)
					tr.Delete(30)
				}
			}
		}()
		for i := 0; i < 2000; i++ {
			keys, err := tr.Keys(0, 63)
			if err != nil {
				t.Fatal(err)
			}
			saw2, saw60 := false, false
			for _, k := range keys {
				if k == 2 {
					saw2 = true
				}
				if k == 60 {
					saw60 = true
				}
				if k != 2 && k != 30 && k != 60 {
					t.Fatalf("impossible key %d in scan", k)
				}
			}
			if !saw2 || !saw60 {
				t.Fatalf("stable keys missed: %v", keys)
			}
		}
		close(stop)
		wg.Wait()
	})
}
