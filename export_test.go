package lockfreetrie

// Test-only exports: the facade deliberately has no public "resize now"
// entry point (migrations are the decision layer's job), but the
// resize-aware facade suites need deterministic transitions.

// ForceResize synchronously re-partitions a WithAdaptiveShards trie.
func ForceResize(t *Trie, k int) error { return t.rz.Resize(k) }

// ForceResizeRelaxed is ForceResize for the relaxed facade.
func ForceResizeRelaxed(t *Relaxed, k int) error { return t.rz.Resize(k) }
