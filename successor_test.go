package lockfreetrie_test

import (
	"math/rand"
	"sync"
	"testing"

	lockfreetrie "repro"
)

// TestSuccessorBasic mirrors the Predecessor edge cases upward at every
// shard geometry (u=64, k=16 → width-4 shards, so most successors cross
// shard boundaries).
func TestSuccessorBasic(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		tr, err := lockfreetrie.New(64, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := tr.Successor(0); got != -1 {
			t.Fatalf("Successor(0) on empty = %d, want -1", got)
		}
		if got, _ := tr.Min(); got != -1 {
			t.Fatalf("Min on empty = %d, want -1", got)
		}
		for _, k := range []int64{2, 5, 9, 30, 61} {
			if err := tr.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
		cases := []struct{ y, want int64 }{
			{0, 2}, {1, 2}, {2, 5}, {4, 5}, {5, 9}, {9, 30},
			{10, 30}, {29, 30}, {30, 61}, {60, 61}, {61, -1}, {63, -1},
		}
		for _, c := range cases {
			if got, err := tr.Successor(c.y); err != nil || got != c.want {
				t.Fatalf("Successor(%d) = %d,%v, want %d", c.y, got, err, c.want)
			}
		}
		if got, _ := tr.Min(); got != 2 {
			t.Fatalf("Min = %d, want 2", got)
		}
		ceil := []struct{ x, want int64 }{
			{0, 2}, {2, 2}, {3, 5}, {5, 5}, {6, 9}, {31, 61}, {61, 61}, {62, -1},
		}
		for _, c := range ceil {
			if got, err := tr.Ceiling(c.x); err != nil || got != c.want {
				t.Fatalf("Ceiling(%d) = %d,%v, want %d", c.x, got, err, c.want)
			}
		}
		if _, err := tr.Successor(64); err == nil {
			t.Fatal("Successor(64) should fail the range check")
		}
		if _, err := tr.Ceiling(-1); err == nil {
			t.Fatal("Ceiling(-1) should fail the range check")
		}
	})
}

// TestSuccessorMirrorsPredecessor cross-checks the two directions against
// each other and a reference map under random contents, including the
// combining configuration.
func TestSuccessorMirrorsPredecessor(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		for _, combining := range []bool{false, true} {
			opts := []lockfreetrie.Option{lockfreetrie.WithShards(shards)}
			if combining {
				opts = append(opts, lockfreetrie.WithCombining())
			}
			const u = int64(128)
			tr, err := lockfreetrie.New(u, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ref := map[int64]bool{}
			rng := rand.New(rand.NewSource(int64(shards)))
			for i := 0; i < 300; i++ {
				x := rng.Int63n(u)
				if rng.Intn(3) == 0 {
					tr.Delete(x)
					delete(ref, x)
				} else {
					tr.Insert(x)
					ref[x] = true
				}
			}
			for y := int64(0); y < u; y++ {
				want := int64(-1)
				for c := y + 1; c < u; c++ {
					if ref[c] {
						want = c
						break
					}
				}
				if got, _ := tr.Successor(y); got != want {
					t.Fatalf("shards=%d combining=%v: Successor(%d) = %d, want %d",
						shards, combining, y, got, want)
				}
			}
			// Min/Max agree with the reference extremes.
			wantMin, wantMax := int64(-1), int64(-1)
			for k := range ref {
				if wantMin == -1 || k < wantMin {
					wantMin = k
				}
				if k > wantMax {
					wantMax = k
				}
			}
			if got, _ := tr.Min(); got != wantMin {
				t.Fatalf("Min = %d, want %d", got, wantMin)
			}
			if got, _ := tr.Max(); got != wantMax {
				t.Fatalf("Max = %d, want %d", got, wantMax)
			}
		}
	})
}

// TestSuccessorConcurrentSanity: under churn, Successor must return a key
// strictly above y (or −1) and never error inside the universe; quiescent
// exactness is re-checked afterwards.
func TestSuccessorConcurrentSanity(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		const u = int64(256)
		tr, err := lockfreetrie.New(u, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					x := rng.Int63n(u)
					if rng.Intn(2) == 0 {
						tr.Insert(x)
					} else {
						tr.Delete(x)
					}
				}
			}(int64(w) + 11)
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 3000; i++ {
			y := rng.Int63n(u)
			got, err := tr.Successor(y)
			if err != nil {
				t.Fatalf("Successor(%d): %v", y, err)
			}
			if got != -1 && (got <= y || got >= u) {
				t.Fatalf("Successor(%d) = %d out of (y, u)", y, got)
			}
		}
		close(stop)
		wg.Wait()
		// Quiescent: agree with a full Keys scan.
		keys, err := tr.Keys(0, u-1)
		if err != nil {
			t.Fatal(err)
		}
		present := map[int64]bool{}
		for _, k := range keys {
			present[k] = true
		}
		for y := int64(0); y < u; y += 7 {
			want := int64(-1)
			for c := y + 1; c < u; c++ {
				if present[c] {
					want = c
					break
				}
			}
			if got, _ := tr.Successor(y); got != want {
				t.Fatalf("quiescent Successor(%d) = %d, want %d", y, got, want)
			}
		}
	})
}
