package lockfreetrie_test

import (
	"strings"
	"testing"
	"time"

	lockfreetrie "repro"
)

// reopenKeys closes tr's successor-to-be and returns a fresh durable
// trie over dir plus its recovered key set.
func openDurable(t *testing.T, dir string, opts ...lockfreetrie.Option) *lockfreetrie.Trie {
	t.Helper()
	all := append([]lockfreetrie.Option{lockfreetrie.WithDurability(dir)}, opts...)
	tr, err := lockfreetrie.New(1<<12, all...)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestDurableRecovery: updates through every entrypoint survive a
// close/reopen cycle, across all three construction paths.
func TestDurableRecovery(t *testing.T) {
	paths := []struct {
		name string
		opts []lockfreetrie.Option
	}{
		{"k1", nil},
		{"sharded", []lockfreetrie.Option{lockfreetrie.WithShards(4)}},
		{"resize", []lockfreetrie.Option{lockfreetrie.WithAdaptiveShards(1, 4)}},
	}
	for _, p := range paths {
		t.Run(p.name, func(t *testing.T) {
			dir := t.TempDir()
			tr := openDurable(t, dir, p.opts...)
			if !tr.Durable() {
				t.Fatal("Durable() = false")
			}
			for _, k := range []int64{10, 20, 30, 40} {
				if err := tr.Insert(k); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.Delete(20); err != nil {
				t.Fatal(err)
			}
			if errs := tr.ApplyBatch([]lockfreetrie.Op{
				{Kind: lockfreetrie.OpInsert, Key: 100},
				{Kind: lockfreetrie.OpDelete, Key: 40},
				{Kind: lockfreetrie.OpInsert, Key: 7},
			}); errs != nil {
				t.Fatalf("ApplyBatch: %v", errs)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			tr2 := openDurable(t, dir, p.opts...)
			defer tr2.Close()
			want := []int64{7, 10, 30, 100}
			keys, err := tr2.Keys(0, tr2.Universe()-1)
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != len(want) {
				t.Fatalf("recovered %v, want %v", keys, want)
			}
			for i := range want {
				if keys[i] != want[i] {
					t.Fatalf("recovered %v, want %v", keys, want)
				}
			}
			rs := tr2.RecoveryStats()
			if rs.Keys != 4 || rs.ReplayedOps == 0 {
				t.Fatalf("RecoveryStats = %+v, want 4 keys via replay", rs)
			}
			if tr2.Len() != 4 {
				t.Fatalf("Len = %d, want 4", tr2.Len())
			}
		})
	}
}

// TestDurableSnapshotCycle: SnapshotWAL checkpoints; recovery then
// reports snapshot keys plus the post-snapshot tail.
func TestDurableSnapshotCycle(t *testing.T) {
	dir := t.TempDir()
	tr := openDurable(t, dir)
	for k := int64(0); k < 50; k++ {
		tr.Insert(k)
	}
	if err := tr.SnapshotWAL(); err != nil {
		t.Fatal(err)
	}
	for k := int64(100); k < 110; k++ {
		tr.Insert(k)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2 := openDurable(t, dir)
	defer tr2.Close()
	rs := tr2.RecoveryStats()
	if rs.SnapshotKeys != 50 || rs.ReplayedOps != 10 || rs.Keys != 60 {
		t.Fatalf("RecoveryStats = %+v, want 50 snapshot keys + 10 replayed", rs)
	}
}

// TestDurableMetrics: wal.* counters surface through MetricsSnapshot,
// with and without trie observability.
func TestDurableMetrics(t *testing.T) {
	dir := t.TempDir()
	tr := openDurable(t, dir)
	tr.Insert(5)
	snap := tr.MetricsSnapshot()
	if snap.Counters["wal.append.ops"] != 1 {
		t.Fatalf("wal.append.ops = %d, want 1", snap.Counters["wal.append.ops"])
	}
	if snap.Counters["ops.insert"] != 1 {
		t.Fatalf("ops.insert = %d, want 1 (trie metrics lost in merge)", snap.Counters["ops.insert"])
	}
	tr.Close()

	tr2, err := lockfreetrie.New(1<<12,
		lockfreetrie.WithDurability(t.TempDir()), lockfreetrie.WithoutObservability())
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	tr2.Insert(9)
	if got := tr2.MetricsSnapshot().Counters["wal.append.ops"]; got != 1 {
		t.Fatalf("wal.append.ops without trie obs = %d, want 1", got)
	}
}

// TestDurabilityOptionValidation: bad options fail construction.
func TestDurabilityOptionValidation(t *testing.T) {
	cases := []lockfreetrie.Option{
		lockfreetrie.WithDurability(""),
		lockfreetrie.WithDurability(t.TempDir(), lockfreetrie.WithSyncEvery(0)),
		lockfreetrie.WithDurability(t.TempDir(), lockfreetrie.WithSyncInterval(-time.Second)),
		lockfreetrie.WithDurability(t.TempDir(), lockfreetrie.WithWALShards(3)),
		lockfreetrie.WithDurability(t.TempDir(), lockfreetrie.WithSegmentBytes(0)),
		lockfreetrie.WithDurability(t.TempDir(), lockfreetrie.WithSnapshotBytes(0)),
	}
	for i, opt := range cases {
		if _, err := lockfreetrie.New(1<<12, opt); err == nil {
			t.Fatalf("case %d: invalid durability option accepted", i)
		}
	}
	if _, err := lockfreetrie.NewRelaxed(1<<12, lockfreetrie.WithDurability(t.TempDir())); err == nil ||
		!strings.Contains(err.Error(), "NewRelaxed") {
		t.Fatalf("NewRelaxed with durability: %v, want rejection", err)
	}
}

// TestNonDurableClose: Close and SnapshotWAL behave sanely without
// WithDurability.
func TestNonDurableClose(t *testing.T) {
	tr, err := lockfreetrie.New(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Durable() {
		t.Fatal("Durable() = true without WithDurability")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tr.SnapshotWAL(); err == nil {
		t.Fatal("SnapshotWAL without durability succeeded")
	}
	if rs := tr.RecoveryStats(); rs != (lockfreetrie.RecoveryStats{}) {
		t.Fatalf("RecoveryStats = %+v, want zero", rs)
	}
}
