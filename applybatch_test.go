package lockfreetrie_test

import (
	"fmt"
	"testing"

	lockfreetrie "repro"
)

// These tests pin the facade ApplyBatch semantics the server layer leans
// on: errs indexed by the ORIGINAL op positions (a rejected op mid-batch
// must not shift its neighbours' verdicts), empty batches as no-ops, and
// duplicate keys resolving to the batch-order-last op.

func TestApplyBatchEmpty(t *testing.T) {
	tr, err := lockfreetrie.New(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if errs := tr.ApplyBatch(nil); errs != nil {
		t.Fatalf("ApplyBatch(nil) = %v, want nil", errs)
	}
	if errs := tr.ApplyBatch([]lockfreetrie.Op{}); errs != nil {
		t.Fatalf("ApplyBatch(empty) = %v, want nil", errs)
	}
}

func TestApplyBatchOutOfUniverseMidBatch(t *testing.T) {
	const u = int64(1 << 10)
	tr, err := lockfreetrie.New(u)
	if err != nil {
		t.Fatal(err)
	}
	ops := []lockfreetrie.Op{
		{Kind: lockfreetrie.OpInsert, Key: 3},
		{Kind: lockfreetrie.OpInsert, Key: u}, // one past the universe
		{Kind: lockfreetrie.OpInsert, Key: 7},
		{Kind: lockfreetrie.OpInsert, Key: -1},
		{Kind: lockfreetrie.OpDelete, Key: 7},
	}
	errs := tr.ApplyBatch(ops)
	if errs == nil {
		t.Fatal("ApplyBatch accepted out-of-universe keys")
	}
	if len(errs) != len(ops) {
		t.Fatalf("len(errs) = %d, want %d (indexed by original position)", len(errs), len(ops))
	}
	for i, wantErr := range []bool{false, true, false, true, false} {
		if (errs[i] != nil) != wantErr {
			t.Errorf("errs[%d] = %v, want err=%v", i, errs[i], wantErr)
		}
	}
	// The rejected ops must not have blocked their valid neighbours —
	// including the delete AFTER the second rejection, which supersedes
	// the earlier insert of the same key.
	for k, want := range map[int64]bool{3: true, 7: false} {
		if got, _ := tr.Contains(k); got != want {
			t.Errorf("Contains(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestApplyBatchInvalidKind(t *testing.T) {
	tr, err := lockfreetrie.New(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	ops := []lockfreetrie.Op{
		{Kind: lockfreetrie.OpInsert, Key: 1},
		{Kind: lockfreetrie.OpKind(99), Key: 2},
	}
	errs := tr.ApplyBatch(ops)
	if errs == nil || errs[0] != nil || errs[1] == nil {
		t.Fatalf("errs = %v, want [nil, invalid-kind]", errs)
	}
	if got, _ := tr.Contains(2); got {
		t.Error("invalid-kind op mutated the set")
	}
	if got, _ := tr.Contains(1); !got {
		t.Error("valid op skipped because a neighbour was invalid")
	}
}

// TestApplyBatchDuplicateKeyLastWins: for every duplicated key the LAST
// op in batch order decides the final state, across each starting state.
func TestApplyBatchDuplicateKeyLastWins(t *testing.T) {
	for _, preInserted := range []bool{false, true} {
		for _, lastIsInsert := range []bool{false, true} {
			name := fmt.Sprintf("pre=%v_last_insert=%v", preInserted, lastIsInsert)
			t.Run(name, func(t *testing.T) {
				tr, err := lockfreetrie.New(1 << 10)
				if err != nil {
					t.Fatal(err)
				}
				const k = int64(42)
				if preInserted {
					tr.Insert(k)
				}
				first, last := lockfreetrie.OpInsert, lockfreetrie.OpDelete
				if lastIsInsert {
					first, last = last, first
				}
				// Interleave ops on other keys so the duplicates are not
				// adjacent — dedup must match on key, not position.
				errs := tr.ApplyBatch([]lockfreetrie.Op{
					{Kind: first, Key: k},
					{Kind: lockfreetrie.OpInsert, Key: 1},
					{Kind: first, Key: k},
					{Kind: lockfreetrie.OpInsert, Key: 2},
					{Kind: last, Key: k},
				})
				if errs != nil {
					t.Fatalf("ApplyBatch errs = %v", errs)
				}
				if got, _ := tr.Contains(k); got != lastIsInsert {
					t.Fatalf("Contains(%d) = %v, want %v (last op wins)", k, got, lastIsInsert)
				}
				for _, other := range []int64{1, 2} {
					if got, _ := tr.Contains(other); !got {
						t.Errorf("interleaved insert of %d lost", other)
					}
				}
			})
		}
	}
}
