package lockfreetrie_test

import (
	"strings"
	"sync"
	"testing"

	lockfreetrie "repro"
)

// WithPlacementHint's facade validation: every invalid combination errors
// loudly at New, never constructs a half-placed trie.

func TestWithPlacementHintValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []lockfreetrie.Option
		want string
	}{
		{"empty hint",
			[]lockfreetrie.Option{lockfreetrie.WithCombining(), lockfreetrie.WithPlacementHint(nil)},
			"empty hint"},
		{"without combining",
			[]lockfreetrie.Option{lockfreetrie.WithShards(4), lockfreetrie.WithPlacementHint([]int{0, 1, 2, 3})},
			"requires WithCombining"},
		{"with adaptive shards",
			[]lockfreetrie.Option{lockfreetrie.WithCombining(), lockfreetrie.WithAdaptiveShards(1, 4),
				lockfreetrie.WithPlacementHint([]int{0})},
			"incompatible with WithAdaptiveShards"},
		{"wrong length",
			[]lockfreetrie.Option{lockfreetrie.WithShards(4), lockfreetrie.WithCombining(),
				lockfreetrie.WithPlacementHint([]int{0, 1})},
			"2 entries for 4 shards"},
		{"group out of range",
			[]lockfreetrie.Option{lockfreetrie.WithShards(4), lockfreetrie.WithCombining(),
				lockfreetrie.WithPlacementHint([]int{0, 1, 2, 7})},
			"outside group range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := lockfreetrie.New(1024, tc.opts...)
			if err == nil {
				t.Fatal("New accepted an invalid placement configuration")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The relaxed constructor shares the validation.
			if _, err := lockfreetrie.NewRelaxed(1024, tc.opts...); err == nil {
				t.Fatal("NewRelaxed accepted an invalid placement configuration")
			}
		})
	}
}

func TestWithPlacementHintAccessor(t *testing.T) {
	plain, err := lockfreetrie.New(1024, lockfreetrie.WithShards(4), lockfreetrie.WithCombining())
	if err != nil {
		t.Fatal(err)
	}
	if h := plain.PlacementHint(); h != nil {
		t.Fatalf("unplaced trie reports hint %v", h)
	}

	hint := []int{0, 0, 2, 2}
	tr, err := lockfreetrie.New(1024, lockfreetrie.WithShards(4), lockfreetrie.WithCombining(),
		lockfreetrie.WithPlacementHint(hint))
	if err != nil {
		t.Fatal(err)
	}
	got := tr.PlacementHint()
	for i := range hint {
		if got[i] != hint[i] {
			t.Fatalf("PlacementHint() = %v, want %v", got, hint)
		}
	}
	got[0] = 3
	if tr.PlacementHint()[0] != 0 {
		t.Fatal("PlacementHint leaked the internal slice")
	}
	// The option took its own copy too: mutating the caller's slice after
	// New must not reach the trie.
	hint[1] = 3
	if tr.PlacementHint()[1] != 0 {
		t.Fatal("WithPlacementHint aliased the caller's slice")
	}
}

// A placed k=1 trie routes through the sharded machinery but keeps the
// facade contract: full insert/delete/predecessor behaviour.
func TestWithPlacementHintSingleShard(t *testing.T) {
	tr, err := lockfreetrie.New(256, lockfreetrie.WithCombining(),
		lockfreetrie.WithPlacementHint([]int{0}))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Shards() != 1 || !tr.Combining() {
		t.Fatalf("placed k=1 trie misconfigured: shards %d combining %v", tr.Shards(), tr.Combining())
	}
	for x := int64(0); x < 256; x += 5 {
		if err := tr.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	if p, _ := tr.Predecessor(7); p != 5 {
		t.Fatalf("Predecessor(7) = %d, want 5", p)
	}
	if err := tr.Delete(5); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Predecessor(7); p != 0 {
		t.Fatalf("Predecessor(7) after delete = %d, want 0", p)
	}
}

// Placement composes with adaptive combining and stays correct under a
// concurrent mixed load (facade-level smoke; the exhaustive proof is the
// conformance variant in internal/sharded).
func TestWithPlacementHintConcurrent(t *testing.T) {
	tr, err := lockfreetrie.New(1024, lockfreetrie.WithShards(8),
		lockfreetrie.WithAdaptiveCombining(),
		lockfreetrie.WithPlacementHint([]int{0, 0, 0, 0, 4, 4, 4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) * 128 // one shard per goroutine
			for rep := 0; rep < 50; rep++ {
				for x := base; x < base+128; x += 2 {
					tr.Insert(x)
				}
				for x := base; x < base+128; x += 4 {
					tr.Delete(x)
				}
			}
		}(g)
	}
	wg.Wait()
	for x := int64(0); x < 1024; x++ {
		want := x%2 == 0 && x%4 != 0
		got, err := tr.Contains(x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Contains(%d) = %v, want %v", x, got, want)
		}
	}
}
