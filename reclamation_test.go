package lockfreetrie_test

import (
	"math/rand"
	"sync"
	"testing"

	lockfreetrie "repro"
	"repro/internal/lincheck"
	"repro/internal/settest"
)

// The reclamation matrix: the settest and lincheck rows below rerun the
// conformance and linearizability suites against the pooled build —
// epoch-based reclamation of PredNodes, announcement cells, copy
// descriptors and notify slabs is always on (internal/ebr; there is no
// opt-out), so every row exercises operations running over recycled
// memory. The workloads are delete/predecessor heavy on a small universe:
// deletes retire the most pooled objects (two embedded predecessors, four
// announcement cells each) and predecessors walk the recycled nodes.

func pooledFactory(k int) settest.Factory {
	return func(u int64) (settest.Set, error) {
		tr, err := lockfreetrie.New(u, lockfreetrie.WithShards(k))
		if err != nil {
			return nil, err
		}
		return apiSet{tr}, nil
	}
}

// TestReclamationConformance runs the full settest suite against the
// pooled trie at every shard geometry of the matrix (k ∈ {1, 4, 16}).
func TestReclamationConformance(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, k int) {
		t.Run("sequential", func(t *testing.T) {
			settest.RunSequential(t, pooledFactory(k), 64)
		})
		t.Run("edge", func(t *testing.T) {
			settest.RunEdgeCases(t, pooledFactory(k), 64)
		})
		t.Run("concurrent", func(t *testing.T) {
			opsPerG := 1200
			if testing.Short() {
				opsPerG = 300
			}
			settest.RunConcurrent(t, pooledFactory(k), 256, 8, opsPerG)
		})
	})
}

// reclRunner wraps the plain facade with lincheck recording (the pooled
// twin of combRunner, minus combining).
type reclRunner struct {
	tr  *lockfreetrie.Trie
	rec *lincheck.Recorder
}

func (r reclRunner) insert(k int64) {
	inv := r.rec.Begin()
	if err := r.tr.Insert(k); err != nil {
		panic(err)
	}
	r.rec.End(lincheck.OpInsert, k, 0, inv)
}

func (r reclRunner) delete(k int64) {
	inv := r.rec.Begin()
	if err := r.tr.Delete(k); err != nil {
		panic(err)
	}
	r.rec.End(lincheck.OpDelete, k, 0, inv)
}

func (r reclRunner) search(k int64) {
	inv := r.rec.Begin()
	got, err := r.tr.Contains(k)
	if err != nil {
		panic(err)
	}
	res := int64(0)
	if got {
		res = 1
	}
	r.rec.End(lincheck.OpSearch, k, res, inv)
}

func (r reclRunner) predecessor(y int64) {
	inv := r.rec.Begin()
	got, err := r.tr.Predecessor(y)
	if err != nil {
		panic(err)
	}
	r.rec.End(lincheck.OpPredecessor, y, got, inv)
}

// TestReclamationLinearizable checks recorded histories of a
// delete/predecessor-heavy mix at k ∈ {1, 4, 16}: the regime where pooled
// objects cycle fastest. A grace-period bug shows up as a history the
// checker rejects (a predecessor answering from a recycled node's stale
// fields) long before it corrupts a sequential run.
func TestReclamationLinearizable(t *testing.T) {
	rounds := 150
	if testing.Short() {
		rounds = 30
	}
	forEachShardCount(t, func(t *testing.T, k int) {
		for round := 0; round < rounds; round++ {
			tr, err := lockfreetrie.New(64, lockfreetrie.WithShards(k))
			if err != nil {
				t.Fatal(err)
			}
			rec := lincheck.NewRecorder()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(round)*131 + int64(id)*104729 + 13))
					do := reclRunner{tr: tr, rec: rec}
					for i := 0; i < 5; i++ {
						key := rng.Int63n(64)
						switch rng.Intn(6) {
						case 0:
							do.insert(key)
						case 1, 2: // delete-heavy: deletes retire the most
							do.delete(key)
						case 3, 4: // pred-heavy: walks recycled nodes
							do.predecessor(key)
						default:
							do.search(key)
						}
					}
				}(w)
			}
			wg.Wait()
			ok, msg, err := lincheck.CheckOrExplain(rec.History())
			if err != nil {
				t.Fatalf("checker error: %v", err)
			}
			if !ok {
				t.Fatalf("shards=%d pooled: %s", k, msg)
			}
		}
	})
}
