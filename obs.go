// Facade half of the unified observability layer (internal/obs): the
// functional options, the per-trie metric/trace state, the instrumentation
// hooks New threads through every backend configuration, and the exported
// surface — MetricsSnapshot, Events, Stats.
//
// Cost model (DESIGN.md §Observability): with observability on (the
// default), each primitive operation pays ONE striped counter increment —
// an uncontended atomic add on a padded cache line selected by the key's
// hash — plus a modulo against the sampling cadence. Every every-th
// operation of a stripe additionally takes two time.Now readings around
// the backend call and one histogram bucket add. Nothing on the record
// path allocates, locks, or touches the registry. WithoutObservability
// removes even the counter (the obs pointer is nil and every hook is one
// predictable branch).
package lockfreetrie

import (
	"fmt"
	"time"

	"repro/internal/bitstrie"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resize"
	"repro/internal/sharded"
)

// DefaultLatencySampling is the default op-latency sampling cadence: one
// in this many operations (per counter stripe) is timed into the latency
// histograms. See WithLatencySampling.
const DefaultLatencySampling = 1024

// Operation kinds of the ops.* counters and latency.* histograms, in
// schema order.
const (
	opSearch = iota
	opPredecessor
	opSuccessor
	opInsert
	opDelete
	opApplyBatch
	opKinds
)

// opNames are the schema metric-name stems, indexed by op kind.
var opNames = [opKinds]string{
	"search", "predecessor", "successor", "insert", "delete", "apply_batch",
}

// WithLatencySampling sets the latency sampling cadence: one in n
// operations (per counter stripe, so ~1/n of the traffic) is timed into
// the per-op-kind latency histograms; the rest pay only the counter
// increment. n = 1 times every operation — useful for offline analysis,
// far too hot for a benchmark. The default is DefaultLatencySampling.
// Incompatible with WithoutObservability. NewRelaxed accepts and ignores
// the observability options (the relaxed trie is a building-block export
// without the instrumented facade).
func WithLatencySampling(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("lockfreetrie: WithLatencySampling(%d): cadence must be at least 1", n)
		}
		c.latEvery = int64(n)
		return nil
	}
}

// WithoutObservability strips the observability layer entirely: no
// counters, no histograms, no event ring — every hook reduces to one nil
// check. This is the measurement baseline the OB1 experiment compares the
// instrumented default against (BENCH_obs.json); MetricsSnapshot returns
// an empty snapshot and Events returns nil. Incompatible with
// WithLatencySampling and WithDescentStats.
func WithoutObservability() Option {
	return func(c *config) error {
		c.obsOff = true
		return nil
	}
}

// WithDescentStats additionally attaches the descent-engine counters
// (bit reads, CAS attempts/failures, summary loads, skipped bit reads —
// internal/bitstrie's Stats) to every shard, folding them into the
// snapshot schema under the bits.* names and into Trie.Stats. Off by
// default: a predecessor-heavy descent evaluates tens of interpreted bits
// per operation, and counting each one is measurement the default
// configuration should not pay. Incompatible with WithoutObservability.
func WithDescentStats() Option {
	return func(c *config) error {
		c.descentStats = true
		return nil
	}
}

// validateObservability checks the observability options against each
// other (shared by New; NewRelaxed ignores the fields).
func (c *config) validateObservability() error {
	if c.obsOff && c.latEvery != 0 {
		return fmt.Errorf("lockfreetrie: WithLatencySampling is incompatible with WithoutObservability")
	}
	if c.obsOff && c.descentStats {
		return fmt.Errorf("lockfreetrie: WithDescentStats is incompatible with WithoutObservability")
	}
	return nil
}

// obsState is one trie's observability plumbing: the registry naming the
// metrics, the event ring the control planes publish into, the hot-path
// counter/histogram handles, and the shared Stats structs every shard of
// every table generation writes into (atomic adds aggregate across shards
// and across resize generations with no carry logic).
type obsState struct {
	reg   *obs.Registry
	ring  *obs.Ring
	every int64 // latency sampling cadence (per counter stripe)
	ops   [opKinds]*obs.Counter
	lats  [opKinds]*obs.Histogram
	// coreStats is attached to every core shard (SetStats); bitsStats to
	// every descent engine, only under WithDescentStats (nil otherwise —
	// attaching it would put an atomic add on every InterpretedBit).
	coreStats *core.Stats
	bitsStats *bitstrie.Stats
}

// newObsState builds the registry, ring, and hot-path handles.
func newObsState(cfg *config) *obsState {
	o := &obsState{
		reg:       obs.NewRegistry(),
		ring:      obs.NewRing(obs.DefaultRingSize),
		every:     cfg.latEvery,
		coreStats: &core.Stats{},
	}
	if o.every <= 0 {
		o.every = DefaultLatencySampling
	}
	if cfg.descentStats {
		o.bitsStats = &bitstrie.Stats{}
	}
	for k := 0; k < opKinds; k++ {
		o.ops[k] = o.reg.Counter("ops." + opNames[k])
		o.lats[k] = o.reg.Histogram("latency." + opNames[k] + "_ns")
	}
	return o
}

// instrumentCore attaches the shared Stats structs and the event ring to
// one core shard. Must run before the shard sees concurrent use (the
// attach points are plain stores): New instruments tables while they are
// still private, and the resize factory wrapper instruments each new
// partition before the migration coordinator publishes it.
func (o *obsState) instrumentCore(c *core.Trie, shard int32) {
	c.SetStats(o.coreStats)
	if o.bitsStats != nil {
		c.Bits().SetStats(o.bitsStats)
	}
	c.Reclaimer().SetEvents(o.ring, shard)
}

// instrumentSharded wires every shard of one sharded table: core stats,
// EBR trace, and — where the configuration built them — the per-shard
// combiner and adaptive-controller traces.
func (o *obsState) instrumentSharded(t *sharded.Trie) {
	for i := 0; i < t.Shards(); i++ {
		o.instrumentCore(t.Shard(i), int32(i))
		if c := t.ShardCombiner(i); c != nil {
			c.SetEvents(o.ring, int32(i))
		}
		if ctl := t.ShardController(i); ctl != nil {
			ctl.SetEvents(o.ring, int32(i))
		}
	}
}

// eachCore visits the live table's core shards (the authoritative table
// under WithAdaptiveShards — a concurrent migration may retire it right
// after, which is fine for the weakly-consistent gauges this feeds).
func (t *Trie) eachCore(fn func(*core.Trie)) {
	switch s := t.set.(type) {
	case *combine.CoreSet:
		fn(s.Core())
	case *sharded.Trie:
		for i := 0; i < s.Shards(); i++ {
			fn(s.Shard(i))
		}
	case *resize.Set:
		tb := s.Table()
		for i := 0; i < tb.Shards(); i++ {
			fn(tb.Shard(i))
		}
	}
}

// eachCombiner visits the live table's combiners (none when combining is
// off).
func (t *Trie) eachCombiner(fn func(*combine.Combiner)) {
	switch s := t.set.(type) {
	case *combine.CoreSet:
		if c := s.Combiner(); c != nil {
			fn(c)
		}
	case *sharded.Trie:
		for i := 0; i < s.Shards(); i++ {
			if c := s.ShardCombiner(i); c != nil {
				fn(c)
			}
		}
	case *resize.Set:
		tb := s.Table()
		for i := 0; i < tb.Shards(); i++ {
			if c := tb.ShardCombiner(i); c != nil {
				fn(c)
			}
		}
	}
}

// combineTotals sums the live combiner counters across shards (MaxBatch
// takes the max). Under WithAdaptiveShards this reads the LIVE table
// only: a migration retires its table's combiner counters (the resize
// layer carries adaptive transitions across generations, not round
// counts), so the combine.* gauges can step down after a resize — the
// same weak-consistency contract as every other snapshot read.
func (t *Trie) combineTotals() combine.Counters {
	var tot combine.Counters
	t.eachCombiner(func(c *combine.Combiner) {
		cs := c.Counters()
		tot.Rounds += cs.Rounds
		tot.Batched += cs.Batched
		tot.Direct += cs.Direct
		if cs.MaxBatch > tot.MaxBatch {
			tot.MaxBatch = cs.MaxBatch
		}
		tot.Retracts += cs.Retracts
		tot.ElectFails += cs.ElectFails
	})
	return tot
}

// registerObsGauges folds every existing subsystem Stats surface into the
// snapshot schema as gauges — closures over the atomics the subsystems
// already maintain, so no hot path changes shape. Called once from New,
// after the backend is assembled.
func (t *Trie) registerObsGauges() {
	o := t.obs
	r := o.reg

	// Core-layer counters (shared struct, aggregated across shards and
	// resize generations by construction).
	r.Gauge("core.notifications", o.coreStats.Notifications.Load)
	r.Gauge("core.bottom_cases", o.coreStats.BottomCases.Load)
	r.Gauge("core.help_activations", o.coreStats.HelpActivations.Load)
	r.Gauge("core.uall_traversal_steps", o.coreStats.UallTraversalSteps.Load)
	r.Gauge("core.ruall_traversal_steps", o.coreStats.RuallTraversalSteps.Load)
	r.Gauge("core.announces", o.coreStats.Announces.Load)

	// Descent-engine counters (WithDescentStats only).
	if b := o.bitsStats; b != nil {
		r.Gauge("bits.bit_reads", b.BitReads.Load)
		r.Gauge("bits.cas_attempts", b.CASAttempts.Load)
		r.Gauge("bits.cas_failures", b.CASFailures.Load)
		r.Gauge("bits.second_cas_success", b.SecondCASSuccess.Load)
		r.Gauge("bits.min_writes", b.MinWrites.Load)
		r.Gauge("bits.traversal_steps", b.TraversalSteps.Load)
		r.Gauge("bits.summary_loads", b.SummaryLoads.Load)
		r.Gauge("bits.skipped_bit_reads", b.SkippedBitReads.Load)
	}

	// Combining layer (live table; see combineTotals for the resize
	// caveat).
	if t.combining {
		r.Gauge("combine.rounds", func() int64 { return t.combineTotals().Rounds })
		r.Gauge("combine.batched", func() int64 { return t.combineTotals().Batched })
		r.Gauge("combine.direct", func() int64 { return t.combineTotals().Direct })
		r.Gauge("combine.max_batch", func() int64 { return t.combineTotals().MaxBatch })
		r.Gauge("combine.retracts", func() int64 { return t.combineTotals().Retracts })
		r.Gauge("combine.elect_fails", func() int64 { return t.combineTotals().ElectFails })
	}
	if t.adaptive {
		r.Gauge("adaptive.enables", func() int64 { e, _ := t.AdaptiveStats(); return e })
		r.Gauge("adaptive.disables", func() int64 { _, d := t.AdaptiveStats(); return d })
	}

	// Resize layer.
	r.Gauge("resize.shards", func() int64 { return int64(t.Shards()) })
	if t.rz != nil {
		r.Gauge("resize.grows", func() int64 { return t.rz.Stats().Grows })
		r.Gauge("resize.shrinks", func() int64 { return t.rz.Stats().Shrinks })
		r.Gauge("resize.seal_assists", t.rz.SealAssists)
	}

	// Reclamation: the highest domain epoch across the live table's
	// shards (each shard owns an EBR domain; the max tracks overall
	// reclamation progress).
	r.Gauge("ebr.epoch", func() int64 {
		var max int64
		t.eachCore(func(c *core.Trie) {
			if e := int64(c.Reclaimer().Epoch()); e > max {
				max = e
			}
		})
		return max
	})

	// The trie itself, and the ring's own loss accounting.
	r.Gauge("trie.len", t.set.Len)
	r.Gauge("events.dropped", o.ring.Dropped)
}

// MetricsSnapshot returns a timestamped reading of every metric the trie
// maintains, under the versioned repro.trie schema: ops.* operation
// counters, latency.*_ns sampled histograms, and the per-subsystem gauges
// (core.*, bits.*, combine.*, adaptive.*, resize.*, ebr.*, trie.*,
// events.*). Weakly consistent — each value is one atomic read, the set
// is not a consistent cut. Rate a window with Snapshot.Delta; serve it
// with internal/obs/export. Empty (schema header only) under
// WithoutObservability.
func (t *Trie) MetricsSnapshot() obs.Snapshot {
	var snap obs.Snapshot
	if t.obs == nil {
		snap = obs.Snapshot{
			Schema:    obs.SchemaName,
			Version:   obs.SchemaVersion,
			UnixNanos: time.Now().UnixNano(),
			Counters:  map[string]int64{},
		}
	} else {
		snap = t.obs.reg.Snapshot()
	}
	// Durability keeps its own registry (the log outlives no trie, and
	// WithoutObservability must not silence the wal.* counters the crash
	// smoke asserts on); merge it over the trie's.
	if t.wal != nil {
		snap = snap.Merge(t.wal.Registry().Snapshot())
	}
	return snap
}

// TraceEvent is one drained control-plane event, decoded for consumers:
// Kind is the event name, Shard the shard it concerns (−1 for whole-set
// events such as resizes), and Values the kind-specific named readings —
// the triggering signal values of an adaptive flip, the per-stage
// durations of a resize, and so on (see internal/obs for the layouts).
type TraceEvent struct {
	// Seq is the ring ticket: strictly increasing in publication order;
	// gaps mark events overwritten before they were drained.
	Seq   uint64
	Kind  string
	Shard int32
	Time  time.Time
	// Values maps the kind's argument names to readings. Unused arguments
	// are omitted.
	Values map[string]int64
}

// traceArgNames maps each event kind to the names of its arguments, in
// obs arg order. Kinds absent here surface their raw args as arg0….
var traceArgNames = map[obs.Kind][]string{
	obs.KindAdaptiveEnable:  {"ewma_milli", "throughput_fired", "throughput_ops", "direct_peak_ops"},
	obs.KindAdaptiveDisable: {"ewma_milli", "retract_rate_milli", "rounds", "retracts"},
	obs.KindResizeGrow:      {"from_shards", "to_shards", "journal_ns", "copy_ns", "catchup_ns", "seal_ns", "replay_ns", "flip_ns"},
	obs.KindResizeShrink:    {"from_shards", "to_shards", "journal_ns", "copy_ns", "catchup_ns", "seal_ns", "replay_ns", "flip_ns"},
	obs.KindEpochAdvance:    {"epoch"},
	obs.KindCombinerElect:   {"batch", "rounds"},
	obs.KindCombinerRetract: {"wait_beats"},
	obs.KindSealAssist:      {"keys"},
}

// Events drains the control-plane trace ring: adaptive-combining flips
// with the signal values that triggered them, shard resizes with
// per-stage durations, EBR epoch advances, sampled combiner elections,
// retractions, and seal assists. Each event is returned exactly once
// across all Events calls; when the bounded ring wraps before a drain,
// the OLDEST undrained events are dropped (counted in the
// events.dropped gauge) and the newest kept. Nil under
// WithoutObservability, or when nothing happened since the last drain.
func (t *Trie) Events() []TraceEvent {
	if t.obs == nil {
		return nil
	}
	evs := t.obs.ring.Drain()
	if len(evs) == 0 {
		return nil
	}
	out := make([]TraceEvent, len(evs))
	for i, e := range evs {
		te := TraceEvent{
			Seq:    e.Seq,
			Kind:   e.Kind.String(),
			Shard:  e.Shard,
			Time:   e.Time(),
			Values: make(map[string]int64),
		}
		names := traceArgNames[e.Kind]
		for a, name := range names {
			te.Values[name] = e.Args[a]
		}
		if names == nil {
			for a := 0; a < obs.EventArgs; a++ {
				te.Values[fmt.Sprintf("arg%d", a)] = e.Args[a]
			}
		}
		out[i] = te
	}
	return out
}

// Stats is a snapshot of the core-layer counters aggregated over every
// shard (and, under WithAdaptiveShards, every table generation): the
// paper-protocol counters plus — under WithDescentStats — the descent
// engine's cache-work counters (zero otherwise). Zero entirely under
// WithoutObservability.
type Stats struct {
	// Notifications counts notify nodes added to notify lists.
	Notifications int64
	// BottomCases counts predecessor queries that ran the ⊥ recovery.
	BottomCases int64
	// HelpActivations counts HelpActivate calls that found work.
	HelpActivations int64
	// UallTraversalSteps / RuallTraversalSteps count announcement-list
	// cells visited.
	UallTraversalSteps  int64
	RuallTraversalSteps int64
	// Announces counts U-ALL announcement passes — the quantity the
	// combining layer amortizes.
	Announces int64
	// BitReads, SummaryLoads and SkippedBitReads are the descent engine's
	// cache-work counters (WithDescentStats only): interpreted-bit
	// evaluations performed, occupancy-summary words loaded, and bit
	// reads the compressed descents avoided.
	BitReads        int64
	SummaryLoads    int64
	SkippedBitReads int64
}

// Stats returns the aggregated core-layer counters. Weakly consistent,
// like MetricsSnapshot (each field is one atomic read).
func (t *Trie) Stats() Stats {
	o := t.obs
	if o == nil {
		return Stats{}
	}
	s := Stats{
		Notifications:       o.coreStats.Notifications.Load(),
		BottomCases:         o.coreStats.BottomCases.Load(),
		HelpActivations:     o.coreStats.HelpActivations.Load(),
		UallTraversalSteps:  o.coreStats.UallTraversalSteps.Load(),
		RuallTraversalSteps: o.coreStats.RuallTraversalSteps.Load(),
		Announces:           o.coreStats.Announces.Load(),
	}
	if b := o.bitsStats; b != nil {
		s.BitReads = b.BitReads.Load()
		s.SummaryLoads = b.SummaryLoads.Load()
		s.SkippedBitReads = b.SkippedBitReads.Load()
	}
	return s
}
