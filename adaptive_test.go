package lockfreetrie_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	lockfreetrie "repro"
	"repro/internal/lincheck"
	"repro/internal/settest"
	"repro/internal/sharded"
)

// aggressive is a facade config that samples and flips fast enough for
// test-sized workloads, with thresholds pinned so the suite is
// independent of default re-tuning.
var aggressive = lockfreetrie.AdaptiveConfig{
	SampleEvery: 16, MinDwellSamples: 2,
	EnableThreshold: 2.5, DisableThreshold: 1.4, SmoothingAlpha: 0.5,
}

// TestWithAdaptiveCombiningValidation pins the option's error cases and
// the construction-time flags.
func TestWithAdaptiveCombiningValidation(t *testing.T) {
	if _, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveCombining(
		lockfreetrie.AdaptiveConfig{}, lockfreetrie.AdaptiveConfig{})); err == nil {
		t.Fatal("two AdaptiveConfigs accepted")
	}
	if _, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveCombining(
		lockfreetrie.AdaptiveConfig{EnableThreshold: 2, DisableThreshold: 3})); err == nil {
		t.Fatal("inverted hysteresis band accepted")
	}
	// One-sided settings are validated against the other side's default:
	// Enable 1.2 sits below the default Disable 1.4, and a Disable above
	// the default Enable 4.0 inverts the band just as silently.
	if _, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveCombining(
		lockfreetrie.AdaptiveConfig{EnableThreshold: 1.2})); err == nil {
		t.Fatal("EnableThreshold below the default DisableThreshold accepted")
	}
	if _, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveCombining(
		lockfreetrie.AdaptiveConfig{DisableThreshold: 5})); err == nil {
		t.Fatal("DisableThreshold above the default EnableThreshold accepted")
	}
	// Out-of-domain values error instead of silently taking defaults.
	if _, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveCombining(
		lockfreetrie.AdaptiveConfig{SmoothingAlpha: 1.5})); err == nil {
		t.Fatal("SmoothingAlpha > 1 accepted")
	}
	if _, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveCombining(
		lockfreetrie.AdaptiveConfig{SampleEvery: -8})); err == nil {
		t.Fatal("negative SampleEvery accepted")
	}
	if _, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveCombining(
		lockfreetrie.AdaptiveConfig{RetractRateDisable: 1.5})); err == nil {
		t.Fatal("RetractRateDisable > 1 accepted (the guard would be unreachable)")
	}
	// NaN fails every ordered comparison, so naive x < 0 || x > 1 checks
	// would wave it through into a controller that can never flip.
	for _, cfg := range []lockfreetrie.AdaptiveConfig{
		{SmoothingAlpha: math.NaN()},
		{EnableThreshold: math.NaN()},
		{DisableThreshold: math.NaN()},
		{RetractRateDisable: math.NaN()},
		{EnableThreshold: math.Inf(1)}, // a never-enabling controller is pure tax
	} {
		if _, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveCombining(cfg)); err == nil {
			t.Fatalf("non-finite config %+v accepted", cfg)
		}
	}
	tr, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveCombining())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AdaptiveCombining() || !tr.Combining() {
		t.Fatalf("AdaptiveCombining = %v, Combining = %v, want true, true",
			tr.AdaptiveCombining(), tr.Combining())
	}
	plain, err := lockfreetrie.New(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if plain.AdaptiveCombining() {
		t.Fatal("plain trie reports AdaptiveCombining")
	}
	if e, d := plain.AdaptiveStats(); e != 0 || d != 0 {
		t.Fatalf("plain AdaptiveStats = (%d, %d)", e, d)
	}
}

// TestAdaptiveQuiescentState drives disjoint-range goroutines through the
// adaptive trie — flips may land anywhere in the run — and verifies the
// exact quiescent state, at every shard count of the suite matrix.
func TestAdaptiveQuiescentState(t *testing.T) {
	for _, k := range []int{1, 4, 16} {
		for _, start := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d/startCombining=%v", k, start), func(t *testing.T) {
				cfg := aggressive
				cfg.StartCombining = start
				tr, err := lockfreetrie.New(1<<10,
					lockfreetrie.WithShards(k), lockfreetrie.WithAdaptiveCombining(cfg))
				if err != nil {
					t.Fatal(err)
				}
				const goroutines, per = 8, 400
				width := int64(1<<10) / goroutines
				var wg sync.WaitGroup
				finals := make([]map[int64]bool, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(id)*17 + 1))
						lo := int64(id) * width
						final := map[int64]bool{}
						for i := 0; i < per; i++ {
							x := lo + rng.Int63n(width)
							switch rng.Intn(4) {
							case 0, 1:
								tr.Insert(x)
								final[x] = true
							case 2:
								tr.Delete(x)
								delete(final, x)
							case 3:
								if p, err := tr.Predecessor(x); err != nil || p >= x {
									t.Errorf("Predecessor(%d) = %d, %v", x, p, err)
									return
								}
							}
						}
						finals[id] = final
					}(g)
				}
				wg.Wait()
				present := map[int64]bool{}
				var n int64
				for _, final := range finals {
					for x := range final {
						present[x] = true
						n++
					}
				}
				for x := int64(0); x < 1<<10; x++ {
					got, err := tr.Contains(x)
					if err != nil {
						t.Fatal(err)
					}
					if got != present[x] {
						t.Fatalf("quiescent Contains(%d) = %v, want %v", x, got, present[x])
					}
				}
				if got := tr.Len(); got != n {
					t.Fatalf("quiescent Len = %d, want %d", got, n)
				}
				e, d := tr.AdaptiveStats()
				t.Logf("k=%d start=%v enables=%d disables=%d", k, start, e, d)
			})
		}
	}
}

// TestAdaptiveSoloPublisherDisables is the facade-level thin-spread
// regression: a single publisher starting in combining mode drains only
// size-1 rounds, so the controller must flip it to direct within the
// dwell bound — max(MinDwellSamples, 2) samples of SampleEvery updates
// each (2 samples is the EWMA's decay from the optimistic start to the
// disable threshold at the default α).
func TestAdaptiveSoloPublisherDisables(t *testing.T) {
	cfg := lockfreetrie.AdaptiveConfig{
		SampleEvery: 16, MinDwellSamples: 3, StartCombining: true,
		EnableThreshold: 2.5, DisableThreshold: 1.4, SmoothingAlpha: 0.5,
	}
	tr, err := lockfreetrie.New(1<<12, lockfreetrie.WithAdaptiveCombining(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// The dwell bound, in update ops, plus one sample of slack for the
	// cadence offset.
	bound := cfg.SampleEvery * (cfg.MinDwellSamples + 1)
	for i := 0; i < bound; i++ {
		if err := tr.Insert(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	e, d := tr.AdaptiveStats()
	if d != 1 {
		t.Fatalf("disables = %d after %d solo ops, want exactly 1 within the dwell bound", d, bound)
	}
	if e != 0 {
		t.Fatalf("enables = %d, want 0 (nothing should re-enable a solo publisher)", e)
	}
	// Re-enabling needs clustering; another solo stretch must not flip
	// back.
	for i := 0; i < bound; i++ {
		if err := tr.Delete(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if e, _ := tr.AdaptiveStats(); e != 0 {
		t.Fatalf("solo deletes re-enabled combining (enables = %d)", e)
	}
}

// TestAdaptiveApplyBatch: the explicit batch entrypoint bypasses the
// publication slots at every adaptive configuration, exactly as with
// WithCombining.
func TestAdaptiveApplyBatch(t *testing.T) {
	for _, k := range []int{1, 4} {
		tr, err := lockfreetrie.New(64,
			lockfreetrie.WithShards(k), lockfreetrie.WithAdaptiveCombining())
		if err != nil {
			t.Fatal(err)
		}
		errs := tr.ApplyBatch([]lockfreetrie.Op{
			{Kind: lockfreetrie.OpInsert, Key: 3},
			{Kind: lockfreetrie.OpInsert, Key: 40},
			{Kind: lockfreetrie.OpInsert, Key: 41},
			{Kind: lockfreetrie.OpDelete, Key: 40},
		})
		if errs != nil {
			t.Fatalf("k=%d: ApplyBatch errs = %v", k, errs)
		}
		for _, want := range []struct {
			key int64
			in  bool
		}{{3, true}, {40, false}, {41, true}} {
			got, err := tr.Contains(want.key)
			if err != nil {
				t.Fatal(err)
			}
			if got != want.in {
				t.Fatalf("k=%d: Contains(%d) = %v, want %v", k, want.key, got, want.in)
			}
		}
	}
}

// TestAdaptiveRelaxedFacade drives the relaxed adaptive variant to a known
// quiescent state and checks the mode plumbing.
func TestAdaptiveRelaxedFacade(t *testing.T) {
	for _, k := range []int{1, 4} {
		cfg := aggressive
		cfg.StartCombining = true
		tr, err := lockfreetrie.NewRelaxed(256,
			lockfreetrie.WithShards(k), lockfreetrie.WithAdaptiveCombining(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if !tr.AdaptiveCombining() {
			t.Fatal("AdaptiveCombining() = false")
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				lo := int64(id) * 64
				for i := int64(0); i < 64; i++ {
					tr.Insert(lo + i)
				}
				for i := int64(1); i < 64; i += 2 {
					tr.Delete(lo + i)
				}
			}(g)
		}
		wg.Wait()
		for x := int64(0); x < 256; x++ {
			want := x%2 == 0
			got, err := tr.Contains(x)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("k=%d: Contains(%d) = %v, want %v", k, x, got, want)
			}
		}
		if got := tr.Len(); got != 128 {
			t.Fatalf("k=%d: Len = %d, want 128", k, got)
		}
		e, d := tr.AdaptiveStats()
		t.Logf("k=%d enables=%d disables=%d", k, e, d)
	}
}

// adaptiveFactory builds facade tries under WithAdaptiveCombining for the
// settest suite.
func adaptiveFactory(k int, start bool) settest.Factory {
	return func(u int64) (settest.Set, error) {
		cfg := aggressive
		cfg.StartCombining = start
		tr, err := lockfreetrie.New(u,
			lockfreetrie.WithShards(k), lockfreetrie.WithAdaptiveCombining(cfg))
		if err != nil {
			return nil, err
		}
		return apiSet{tr}, nil
	}
}

// TestAdaptiveConformance runs the full settest suite against
// WithAdaptiveCombining at every shard geometry, from both starting
// modes (organic flips churn throughout under the aggressive config).
func TestAdaptiveConformance(t *testing.T) {
	for _, k := range []int{1, 4, 16} {
		for _, start := range []bool{false, true} {
			f := adaptiveFactory(k, start)
			t.Run(fmt.Sprintf("shards=%d/startCombining=%v", k, start), func(t *testing.T) {
				t.Run("sequential", func(t *testing.T) {
					settest.RunSequential(t, f, 64)
				})
				t.Run("edge", func(t *testing.T) {
					settest.RunEdgeCases(t, f, 64)
				})
				t.Run("concurrent", func(t *testing.T) {
					opsPerG := 1200
					if testing.Short() {
						opsPerG = 300
					}
					settest.RunConcurrent(t, f, 256, 8, opsPerG)
				})
			})
		}
	}
}

// runAdaptiveRecorded is runCombiningRecorded with WithAdaptiveCombining
// (combining at start, aggressive sampling, so rounds and organic flips
// both happen inside the tiny histories).
func runAdaptiveRecorded(t *testing.T, u int64, k, workers int, script func(id int, rng *rand.Rand, do combRunner)) {
	t.Helper()
	cfg := aggressive
	cfg.SampleEvery = 4
	cfg.MinDwellSamples = 1
	cfg.StartCombining = true
	tr, err := lockfreetrie.New(u,
		lockfreetrie.WithShards(k), lockfreetrie.WithAdaptiveCombining(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rec := lincheck.NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*104729 + 7))
			script(id, rng, combRunner{tr: tr, rec: rec})
		}(w)
	}
	wg.Wait()
	ok, msg, err := lincheck.CheckOrExplain(rec.History())
	if err != nil {
		t.Fatalf("checker error: %v", err)
	}
	if !ok {
		t.Fatalf("shards=%d adaptive: %s", k, msg)
	}
}

// TestAdaptiveLinearizableWithBatches mixes explicit ApplyBatch calls
// with per-op traffic under WithAdaptiveCombining — the facade-level
// mirror of the sharded suite's adaptive lincheck variants.
func TestAdaptiveLinearizableWithBatches(t *testing.T) {
	old := sharded.ScanRetries
	sharded.ScanRetries = 1 << 20
	t.Cleanup(func() { sharded.ScanRetries = old })
	ins := func(k int64) lockfreetrie.Op { return lockfreetrie.Op{Kind: lockfreetrie.OpInsert, Key: k} }
	del := func(k int64) lockfreetrie.Op { return lockfreetrie.Op{Kind: lockfreetrie.OpDelete, Key: k} }
	for _, k := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			rounds := 150
			if testing.Short() {
				rounds = 30
			}
			for round := 0; round < rounds; round++ {
				runAdaptiveRecorded(t, 64, k, 4, func(id int, rng *rand.Rand, do combRunner) {
					switch id {
					case 0:
						do.batch(ins(3), ins(17), ins(40))
						do.delete(17)
					case 1:
						do.batch(del(3), ins(22))
						do.search(22)
					case 2:
						do.predecessor(41)
						do.search(3)
						do.predecessor(23)
					case 3:
						do.insert(41)
						do.batch(del(40), del(41))
					}
				})
			}
		})
	}
}
