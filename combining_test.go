package lockfreetrie_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	lockfreetrie "repro"
	"repro/internal/lincheck"
	"repro/internal/settest"
	"repro/internal/sharded"
)

// apiSet adapts the public facade to the settest interface (the facade's
// key-range errors cannot fire: settest stays inside [0, u)).
type apiSet struct{ tr *lockfreetrie.Trie }

func (s apiSet) Search(x int64) bool {
	ok, err := s.tr.Contains(x)
	if err != nil {
		panic(err)
	}
	return ok
}

func (s apiSet) Insert(x int64) {
	if err := s.tr.Insert(x); err != nil {
		panic(err)
	}
}

func (s apiSet) Delete(x int64) {
	if err := s.tr.Delete(x); err != nil {
		panic(err)
	}
}

func (s apiSet) Predecessor(y int64) int64 {
	p, err := s.tr.Predecessor(y)
	if err != nil {
		panic(err)
	}
	return p
}

func combiningFactory(k int) settest.Factory {
	return func(u int64) (settest.Set, error) {
		tr, err := lockfreetrie.New(u, lockfreetrie.WithShards(k), lockfreetrie.WithCombining())
		if err != nil {
			return nil, err
		}
		return apiSet{tr}, nil
	}
}

// TestCombiningConformance runs the full settest suite against
// WithCombining at every shard geometry of the matrix.
func TestCombiningConformance(t *testing.T) {
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			t.Run("sequential", func(t *testing.T) {
				settest.RunSequential(t, combiningFactory(k), 64)
			})
			t.Run("edge", func(t *testing.T) {
				settest.RunEdgeCases(t, combiningFactory(k), 64)
			})
			t.Run("concurrent", func(t *testing.T) {
				opsPerG := 1200
				if testing.Short() {
					opsPerG = 300
				}
				settest.RunConcurrent(t, combiningFactory(k), 256, 8, opsPerG)
			})
		})
	}
}

// combRunner wraps a combining facade trie with lincheck recording.
type combRunner struct {
	tr  *lockfreetrie.Trie
	rec *lincheck.Recorder
}

func (r combRunner) insert(k int64) {
	inv := r.rec.Begin()
	if err := r.tr.Insert(k); err != nil {
		panic(err)
	}
	r.rec.End(lincheck.OpInsert, k, 0, inv)
}

func (r combRunner) delete(k int64) {
	inv := r.rec.Begin()
	if err := r.tr.Delete(k); err != nil {
		panic(err)
	}
	r.rec.End(lincheck.OpDelete, k, 0, inv)
}

func (r combRunner) batch(ops ...lockfreetrie.Op) {
	// A batch is not atomic: record each op as its own history event
	// around the whole call, which is sound (every op's linearization
	// point lies inside the call).
	inv := r.rec.Begin()
	if errs := r.tr.ApplyBatch(ops); errs != nil {
		panic(fmt.Sprintf("ApplyBatch: %v", errs))
	}
	for _, op := range ops {
		kind := lincheck.OpInsert
		if op.Kind == lockfreetrie.OpDelete {
			kind = lincheck.OpDelete
		}
		r.rec.End(kind, op.Key, 0, inv)
	}
}

func (r combRunner) search(k int64) {
	inv := r.rec.Begin()
	got, err := r.tr.Contains(k)
	if err != nil {
		panic(err)
	}
	res := int64(0)
	if got {
		res = 1
	}
	r.rec.End(lincheck.OpSearch, k, res, inv)
}

func (r combRunner) predecessor(y int64) {
	inv := r.rec.Begin()
	got, err := r.tr.Predecessor(y)
	if err != nil {
		panic(err)
	}
	r.rec.End(lincheck.OpPredecessor, y, got, inv)
}

func runCombiningRecorded(t *testing.T, u int64, k, workers int, script func(id int, rng *rand.Rand, do combRunner)) {
	t.Helper()
	tr, err := lockfreetrie.New(u, lockfreetrie.WithShards(k), lockfreetrie.WithCombining())
	if err != nil {
		t.Fatal(err)
	}
	rec := lincheck.NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*104729 + 7))
			script(id, rng, combRunner{tr: tr, rec: rec})
		}(w)
	}
	wg.Wait()
	ok, msg, err := lincheck.CheckOrExplain(rec.History())
	if err != nil {
		t.Fatalf("checker error: %v", err)
	}
	if !ok {
		t.Fatalf("shards=%d combining: %s", k, msg)
	}
}

func combiningRounds(t *testing.T, n int) int {
	if testing.Short() {
		return n / 5
	}
	return n
}

// TestCombiningLinearizable checks recorded histories of combined updates,
// searches and predecessors — the histories are small enough that every op
// usually lands in one combining round, the regime where dedup and the
// round handoff must stay linearizable.
func TestCombiningLinearizable(t *testing.T) {
	// Raise the fallback budget as the sharded suite does, so the
	// weakly-consistent degradation path stays unreachable under test.
	old := sharded.ScanRetries
	sharded.ScanRetries = 1 << 20
	t.Cleanup(func() { sharded.ScanRetries = old })
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			for round := 0; round < combiningRounds(t, 150); round++ {
				runCombiningRecorded(t, 64, k, 4, func(id int, rng *rand.Rand, do combRunner) {
					for i := 0; i < 5; i++ {
						key := rng.Int63n(64)
						switch rng.Intn(4) {
						case 0:
							do.insert(key)
						case 1:
							do.delete(key)
						case 2:
							do.search(key)
						case 3:
							do.predecessor(key)
						}
					}
				})
			}
		})
	}
}

// TestCombiningLinearizableSameKeyChurn aims all goroutines at two keys so
// rounds constantly dedup conflicting Insert/Delete pairs — the last-wins
// merge must stay a valid linearization.
func TestCombiningLinearizableSameKeyChurn(t *testing.T) {
	old := sharded.ScanRetries
	sharded.ScanRetries = 1 << 20
	t.Cleanup(func() { sharded.ScanRetries = old })
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			for round := 0; round < combiningRounds(t, 150); round++ {
				runCombiningRecorded(t, 64, k, 4, func(id int, rng *rand.Rand, do combRunner) {
					switch id {
					case 0:
						do.insert(5)
						do.delete(5)
						do.insert(5)
					case 1:
						do.delete(5)
						do.insert(33)
					case 2:
						do.search(5)
						do.predecessor(34)
						do.search(33)
					case 3:
						do.insert(5)
						do.predecessor(6)
					}
				})
			}
		})
	}
}

// TestCombiningLinearizableWithBatches mixes explicit ApplyBatch calls
// with combined per-op traffic.
func TestCombiningLinearizableWithBatches(t *testing.T) {
	old := sharded.ScanRetries
	sharded.ScanRetries = 1 << 20
	t.Cleanup(func() { sharded.ScanRetries = old })
	ins := func(k int64) lockfreetrie.Op { return lockfreetrie.Op{Kind: lockfreetrie.OpInsert, Key: k} }
	del := func(k int64) lockfreetrie.Op { return lockfreetrie.Op{Kind: lockfreetrie.OpDelete, Key: k} }
	for _, k := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			for round := 0; round < combiningRounds(t, 150); round++ {
				runCombiningRecorded(t, 64, k, 4, func(id int, rng *rand.Rand, do combRunner) {
					switch id {
					case 0:
						do.batch(ins(3), ins(17), ins(40))
						do.delete(17)
					case 1:
						do.batch(del(3), ins(22))
						do.search(22)
					case 2:
						do.predecessor(41)
						do.search(3)
						do.predecessor(23)
					case 3:
						do.insert(41)
						do.batch(del(40), del(41))
					}
				})
			}
		})
	}
}

// TestApplyBatchLastWinsAndErrors pins the public batch semantics: final
// effect per key, nil error slice on success, positional errors otherwise.
func TestApplyBatchLastWinsAndErrors(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		tr, err := lockfreetrie.New(64, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		errs := tr.ApplyBatch([]lockfreetrie.Op{
			{Kind: lockfreetrie.OpInsert, Key: 7},
			{Kind: lockfreetrie.OpInsert, Key: 9},
			{Kind: lockfreetrie.OpDelete, Key: 7}, // supersedes the insert
			{Kind: lockfreetrie.OpInsert, Key: 50},
		})
		if errs != nil {
			t.Fatalf("ApplyBatch errs = %v, want nil", errs)
		}
		for _, want := range []struct {
			key int64
			in  bool
		}{{7, false}, {9, true}, {50, true}} {
			got, _ := tr.Contains(want.key)
			if got != want.in {
				t.Fatalf("Contains(%d) = %v, want %v", want.key, got, want.in)
			}
		}
		if n := tr.Len(); n != 2 {
			t.Fatalf("Len = %d, want 2", n)
		}

		errs = tr.ApplyBatch([]lockfreetrie.Op{
			{Kind: lockfreetrie.OpInsert, Key: -1},
			{Kind: lockfreetrie.OpInsert, Key: 11},
			{Kind: 0, Key: 3},
			{Kind: lockfreetrie.OpDelete, Key: 64},
		})
		if errs == nil || len(errs) != 4 {
			t.Fatalf("ApplyBatch errs = %v, want 4 positional entries", errs)
		}
		if errs[0] == nil || errs[1] != nil || errs[2] == nil || errs[3] == nil {
			t.Fatalf("ApplyBatch errs = %v: wrong positions", errs)
		}
		if got, _ := tr.Contains(11); !got {
			t.Fatal("valid op 11 was not applied alongside invalid ones")
		}
		if errs := tr.ApplyBatch(nil); errs != nil {
			t.Fatalf("ApplyBatch(nil) = %v", errs)
		}
	})
}

// TestCombiningLen checks the occupancy counters survive the combined
// update paths (pre-increment/rollback discipline inside batch applies).
func TestCombiningLen(t *testing.T) {
	for _, k := range shardCounts {
		tr, err := lockfreetrie.New(1024, lockfreetrie.WithShards(k), lockfreetrie.WithCombining())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				lo := int64(id) * 128
				for i := int64(0); i < 128; i++ {
					tr.Insert(lo + i)
				}
				for i := int64(0); i < 128; i += 4 {
					tr.Delete(lo + i)
				}
				// Re-inserting present keys and deleting absent ones must
				// not drift the counters.
				for i := int64(1); i < 128; i += 4 {
					tr.Insert(lo + i)
					tr.Delete(lo + i - 1)
				}
			}(g)
		}
		wg.Wait()
		want := int64(6 * (128 - 32)) // 32 multiples of 4 deleted per range
		if got := tr.Len(); got != want {
			t.Fatalf("k=%d: Len = %d, want %d", k, got, want)
		}
	}
}
