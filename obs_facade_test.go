package lockfreetrie_test

import (
	"sync"
	"testing"

	lockfreetrie "repro"
)

// TestMetricsSnapshotCountsOps: the ops.* counters count exactly the
// primitive entrypoint calls, the snapshot carries the schema identity,
// and Delta windows subtract.
func TestMetricsSnapshotCountsOps(t *testing.T) {
	tr, err := lockfreetrie.New(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := tr.Insert(i * 7 % 1024); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 40; i++ {
		if _, err := tr.Contains(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 25; i++ {
		if _, err := tr.Predecessor(i); err != nil {
			t.Fatal(err)
		}
	}
	s1 := tr.MetricsSnapshot()
	if s1.Schema == "" || s1.Version == 0 {
		t.Fatalf("snapshot missing schema identity: %q/%d", s1.Schema, s1.Version)
	}
	if got := s1.Counters["ops.insert"]; got != 100 {
		t.Errorf("ops.insert = %d, want 100", got)
	}
	if got := s1.Counters["ops.search"]; got != 40 {
		t.Errorf("ops.search = %d, want 40", got)
	}
	if got := s1.Counters["ops.predecessor"]; got != 25 {
		t.Errorf("ops.predecessor = %d, want 25", got)
	}
	// A key-validation failure never reaches the backend and is not an op.
	if err := tr.Insert(-1); err == nil {
		t.Fatal("Insert(-1) accepted")
	}
	for i := int64(0); i < 10; i++ {
		if err := tr.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	d := tr.MetricsSnapshot().Delta(s1)
	if got := d.Counters["ops.insert"]; got != 0 {
		t.Errorf("delta ops.insert = %d, want 0", got)
	}
	if got := d.Counters["ops.delete"]; got != 10 {
		t.Errorf("delta ops.delete = %d, want 10", got)
	}
}

// TestLatencySamplingRecords: with cadence 1 every op is timed, so the
// histograms carry exactly the op counts; the core gauges move too.
func TestLatencySamplingRecords(t *testing.T) {
	tr, err := lockfreetrie.New(1<<10, lockfreetrie.WithLatencySampling(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if err := tr.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i < 20; i++ {
		if _, err := tr.Predecessor(i); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.MetricsSnapshot()
	if got := s.Hists["latency.insert_ns"].Count; got != 50 {
		t.Errorf("latency.insert_ns count = %d, want 50", got)
	}
	if got := s.Hists["latency.predecessor_ns"].Count; got != 19 {
		t.Errorf("latency.predecessor_ns count = %d, want 19", got)
	}
	if s.Counters["core.announces"] == 0 {
		t.Error("core.announces gauge never moved across 50 inserts")
	}
	if st := tr.Stats(); st.Announces == 0 || st.Notifications < 0 {
		t.Errorf("Stats() = %+v; want Announces > 0", st)
	}
}

// TestWithoutObservabilityStripsEverything: the stripped configuration
// returns an empty (schema-only) snapshot, nil events, zero Stats — and
// keeps operating.
func TestWithoutObservabilityStripsEverything(t *testing.T) {
	tr, err := lockfreetrie.New(1<<10, lockfreetrie.WithoutObservability())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 32; i++ {
		if err := tr.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.MetricsSnapshot()
	if len(s.Counters) != 0 || len(s.Hists) != 0 {
		t.Errorf("stripped snapshot carries %d counters, %d hists", len(s.Counters), len(s.Hists))
	}
	if s.Schema == "" {
		t.Error("stripped snapshot must still carry the schema identity")
	}
	if evs := tr.Events(); evs != nil {
		t.Errorf("stripped Events() = %d events, want nil", len(evs))
	}
	if st := tr.Stats(); st != (lockfreetrie.Stats{}) {
		t.Errorf("stripped Stats() = %+v, want zero", st)
	}
	if n := tr.Len(); n != 32 {
		t.Errorf("Len = %d, want 32", n)
	}
}

// TestObservabilityOptionValidation: the option conflicts error loudly.
func TestObservabilityOptionValidation(t *testing.T) {
	if _, err := lockfreetrie.New(1<<10, lockfreetrie.WithLatencySampling(0)); err == nil {
		t.Error("WithLatencySampling(0) accepted")
	}
	if _, err := lockfreetrie.New(1<<10,
		lockfreetrie.WithoutObservability(), lockfreetrie.WithLatencySampling(8)); err == nil {
		t.Error("WithoutObservability + WithLatencySampling accepted")
	}
	if _, err := lockfreetrie.New(1<<10,
		lockfreetrie.WithoutObservability(), lockfreetrie.WithDescentStats()); err == nil {
		t.Error("WithoutObservability + WithDescentStats accepted")
	}
}

// TestDescentStatsGated: the bits.* counters exist only under
// WithDescentStats and move with predecessor traffic.
func TestDescentStatsGated(t *testing.T) {
	plain, err := lockfreetrie.New(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.MetricsSnapshot().Counters["bits.bit_reads"]; ok {
		t.Error("bits.* registered without WithDescentStats")
	}
	tr, err := lockfreetrie.New(1<<10, lockfreetrie.WithDescentStats())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		if err := tr.Insert(i * 16 % 1024); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i < 64; i++ {
		if _, err := tr.Predecessor(i*16%1024 + 1); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.MetricsSnapshot()
	if s.Counters["bits.bit_reads"] == 0 {
		t.Error("bits.bit_reads never moved under WithDescentStats")
	}
	if st := tr.Stats(); st.BitReads == 0 {
		t.Errorf("Stats().BitReads = 0 under WithDescentStats (stats %+v)", st)
	}
}

// TestEventsCaptureAdaptiveFlipAndResize is the acceptance trace: under a
// clustered update burst an adaptive controller must publish at least one
// enable flip with its triggering signal values, and a live resize must
// publish a grow event carrying all six per-stage durations.
func TestEventsCaptureAdaptiveFlipAndResize(t *testing.T) {
	tr, err := lockfreetrie.New(1<<12,
		lockfreetrie.WithAdaptiveShards(1, 4),
		// Aggressive tuning so the flip lands within the burst even on a
		// single-P host: sample every 4 ops, enable at a sustained ~1.5
		// concurrent publishers, flip after one sample of dwell.
		lockfreetrie.WithAdaptiveCombining(lockfreetrie.AdaptiveConfig{
			SampleEvery:      4,
			EnableThreshold:  1.5,
			DisableThreshold: 0.5,
			MinDwellSamples:  1,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	var events []lockfreetrie.TraceEvent
	drain := func() {
		events = append(events, tr.Events()...)
	}

	// Phase 1: clustered update burst → adaptive enable.
	const workers, per = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				x := (id*per + i) % 512 // one hot range: every worker hits shard 0
				if i%3 == 0 {
					_ = tr.Delete(x)
				} else {
					_ = tr.Insert(x)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	drain()

	// Phase 2: a forced live re-partition → a resize event with stage
	// durations. The decision layer may have already migrated during the
	// burst (that event counts too); a migration in flight makes
	// ForceResize return busy, so retry until the forced one lands.
	for {
		if err := lockfreetrie.ForceResize(tr, 2); err == nil {
			break
		}
		drain()
	}
	drain()

	var enables, grows, resizes int
	for _, e := range events {
		switch e.Kind {
		case "adaptive-enable":
			enables++
			if _, ok := e.Values["ewma_milli"]; !ok {
				t.Errorf("adaptive-enable event missing its triggering signal: %+v", e)
			}
		case "resize-grow", "resize-shrink":
			resizes++
			if e.Kind == "resize-grow" {
				grows++
			}
			if e.Shard != -1 {
				t.Errorf("resize event shard = %d, want -1 (whole set)", e.Shard)
			}
			from, to := e.Values["from_shards"], e.Values["to_shards"]
			if from == to || from < 1 || to < 1 || to > 4 {
				t.Errorf("resize event transition = %d→%d, want a real move within [1, 4]", from, to)
			}
			var total int64
			for _, stage := range []string{"journal_ns", "copy_ns", "catchup_ns", "seal_ns", "replay_ns", "flip_ns"} {
				d, ok := e.Values[stage]
				if !ok || d < 0 {
					t.Errorf("resize event stage %s = %d, ok=%v; want a non-negative duration", stage, d, ok)
				}
				total += d
			}
			if total <= 0 {
				t.Errorf("resize event stage durations sum to %d, want > 0", total)
			}
		}
	}
	if enables == 0 {
		t.Error("no adaptive-enable event captured across the clustered burst")
	}
	if resizes == 0 {
		t.Error("no resize event captured")
	}

	// The transition counters and the event trace must agree in spirit:
	// at least as many transitions counted as events captured (the ring
	// may drop, never invent).
	en, _ := tr.AdaptiveStats()
	if int(en) < enables {
		t.Errorf("AdaptiveStats enables = %d < %d captured events", en, enables)
	}
	if s := tr.MetricsSnapshot(); s.Counters["resize.grows"] < int64(grows) {
		t.Errorf("resize.grows gauge = %d < %d captured grow events",
			s.Counters["resize.grows"], grows)
	}
}
