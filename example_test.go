package lockfreetrie_test

import (
	"fmt"

	lockfreetrie "repro"
)

// The basic lifecycle: create a trie over a bounded universe, insert keys,
// query membership and predecessors.
func ExampleNew() {
	tr, err := lockfreetrie.New(1024)
	if err != nil {
		fmt.Println(err)
		return
	}
	tr.Insert(42)
	tr.Insert(100)
	ok, _ := tr.Contains(42)
	fmt.Println(ok)
	// Output: true
}

func ExampleTrie_Predecessor() {
	tr, _ := lockfreetrie.New(256)
	for _, k := range []int64{10, 20, 30} {
		tr.Insert(k)
	}
	p, _ := tr.Predecessor(25) // largest key < 25
	fmt.Println(p)
	p, _ = tr.Predecessor(10) // nothing below 10
	fmt.Println(p)
	// Output:
	// 20
	// -1
}

func ExampleTrie_Floor() {
	tr, _ := lockfreetrie.New(64)
	tr.Insert(7)
	f, _ := tr.Floor(7) // 7 itself is present
	fmt.Println(f)
	f, _ = tr.Floor(9) // falls back to the predecessor
	fmt.Println(f)
	// Output:
	// 7
	// 7
}

func ExampleTrie_Max() {
	tr, _ := lockfreetrie.New(64)
	m, _ := tr.Max() // empty
	fmt.Println(m)
	tr.Insert(3)
	tr.Insert(61)
	m, _ = tr.Max()
	fmt.Println(m)
	// Output:
	// -1
	// 61
}

// The wait-free relaxed variant: predecessor may abstain under concurrent
// updates (ok=false) but is exact whenever the queried range is quiescent.
func ExampleNewRelaxed() {
	rx, _ := lockfreetrie.NewRelaxed(128)
	rx.Insert(5)
	pred, ok, _ := rx.Predecessor(10)
	fmt.Println(pred, ok)
	succ, ok, _ := rx.Successor(5)
	fmt.Println(succ, ok)
	// Output:
	// 5 true
	// -1 true
}
