package lockfreetrie_test

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	lockfreetrie "repro"
	"repro/internal/resize"
	"repro/internal/settest"
)

// TestWithAdaptiveShardsValidation: bound shapes and option interplay
// fail construction loudly.
func TestWithAdaptiveShardsValidation(t *testing.T) {
	bad := [][2]int{{0, 4}, {3, 8}, {2, 6}, {8, 4}, {-1, -1}}
	for _, b := range bad {
		if _, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveShards(b[0], b[1])); err == nil {
			t.Errorf("WithAdaptiveShards(%d, %d) accepted", b[0], b[1])
		}
	}
	// WithShards must land inside the band.
	if _, err := lockfreetrie.New(1<<10,
		lockfreetrie.WithShards(32), lockfreetrie.WithAdaptiveShards(1, 16)); err == nil {
		t.Error("WithShards(32) outside [1, 16] accepted")
	}
	tr, err := lockfreetrie.New(1<<10,
		lockfreetrie.WithShards(8), lockfreetrie.WithAdaptiveShards(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Shards() != 8 || !tr.AdaptiveShards() {
		t.Fatalf("Shards = %d, AdaptiveShards = %v; want 8, true", tr.Shards(), tr.AdaptiveShards())
	}
	// Without WithShards the trie starts at min.
	tr2, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveShards(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Shards() != 4 {
		t.Fatalf("initial Shards = %d, want min = 4", tr2.Shards())
	}
}

// TestResizeStatsFacade: the counters move with forced transitions and
// stay static without the option.
func TestResizeStatsFacade(t *testing.T) {
	static, err := lockfreetrie.New(1<<10, lockfreetrie.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if st := static.ResizeStats(); st != (lockfreetrie.ResizeStats{Shards: 4}) {
		t.Fatalf("static ResizeStats = %+v", st)
	}
	tr, err := lockfreetrie.New(1<<10, lockfreetrie.WithAdaptiveShards(1, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{4, 16, 4} {
		if err := lockfreetrie.ForceResize(tr, k); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.ResizeStats()
	if st.Shards != 4 || st.Grows != 2 || st.Shrinks != 1 || st.Migrating {
		t.Fatalf("ResizeStats = %+v, want 4 shards, 2 grows, 1 shrink, idle", st)
	}
}

// facadeSet adapts the error-returning facade to the settest interface;
// keys are generated in range, so any error is a test bug.
type facadeSet struct{ t *lockfreetrie.Trie }

func (s facadeSet) Search(x int64) bool {
	ok, err := s.t.Contains(x)
	if err != nil {
		panic(err)
	}
	return ok
}
func (s facadeSet) Insert(x int64) {
	if err := s.t.Insert(x); err != nil {
		panic(err)
	}
}
func (s facadeSet) Delete(x int64) {
	if err := s.t.Delete(x); err != nil {
		panic(err)
	}
}
func (s facadeSet) Predecessor(y int64) int64 {
	p, err := s.t.Predecessor(y)
	if err != nil {
		panic(err)
	}
	return p
}

// TestAdaptiveShardsConformance: the settest concurrent suite against
// the facade while forced transitions cycle 1→4→16→4→1 underneath —
// with and without the combining layers composed in.
func TestAdaptiveShardsConformance(t *testing.T) {
	variants := []struct {
		name string
		opts []lockfreetrie.Option
	}{
		{"plain", nil},
		{"combining", []lockfreetrie.Option{lockfreetrie.WithCombining()}},
		{"adaptive-combining", []lockfreetrie.Option{lockfreetrie.WithAdaptiveCombining(
			lockfreetrie.AdaptiveConfig{SampleEvery: 8, MinDwellSamples: 1})}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			t.Cleanup(func() {
				close(stop)
				wg.Wait()
			})
			f := func(u int64) (settest.Set, error) {
				opts := append([]lockfreetrie.Option{lockfreetrie.WithAdaptiveShards(1, 16)}, v.opts...)
				tr, err := lockfreetrie.New(u, opts...)
				if err != nil {
					return nil, err
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						for _, k := range []int{4, 16, 4, 1} {
							select {
							case <-stop:
								return
							default:
							}
							// The facade's own decision layer may have a
							// migration in flight (the workers' churn feeds
							// it); a busy collision just skips this hop.
							if err := lockfreetrie.ForceResize(tr, k); err != nil && !errors.Is(err, resize.ErrBusy) {
								t.Errorf("ForceResize(%d): %v", k, err)
								return
							}
						}
					}
				}()
				return facadeSet{tr}, nil
			}
			ops := 900
			if testing.Short() {
				ops = 300
			}
			settest.RunConcurrent(t, f, 256, 8, ops)
		})
	}
}

// TestAdaptiveShardsLen: the facade half of the migration-window Len
// regression — quiescent probes mid-replay are exact, concurrent ones
// stay inside the weak contract, and quiescence restores exactness.
// (The layer-level twin with stage-hook probes is
// internal/resize's len_test.go.)
func TestAdaptiveShardsLen(t *testing.T) {
	const u, n, w = int64(1 << 10), int64(150), 4
	tr, err := lockfreetrie.New(u, lockfreetrie.WithAdaptiveShards(1, 16))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if err := tr.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	// Quiescent: exact at every point of a migration.
	if err := lockfreetrie.ForceResize(tr, 8); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(); got != n {
		t.Fatalf("post-migration quiescent Len = %d, want %d", got, n)
	}
	// Concurrent: togglers on private keys while migrations replay.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(key int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tr.Insert(key)
					tr.Delete(key)
					// Yield between pairs — unyielding same-range churn is
					// the adversarial schedule that can starve a single
					// core-trie op (and the migration drain waiting on it)
					// for tens of seconds on a single-P host; see
					// internal/resize's drain latency note.
					runtime.Gosched()
				}
			}
		}(n + int64(g))
	}
	for i := 0; i < 4; i++ {
		for _, k := range []int{16, 1, 8} {
			// Tolerate a busy collision with a decision-layer migration
			// the togglers' churn may have triggered; the Len contract
			// under test is independent of which migration is running.
			if err := lockfreetrie.ForceResize(tr, k); err != nil && !errors.Is(err, resize.ErrBusy) {
				t.Fatal(err)
			}
			if got := tr.Len(); got < n || got > n+2*w {
				t.Fatalf("mid-churn Len = %d outside [%d, %d]", got, n, n+2*w)
			}
		}
	}
	close(stop)
	wg.Wait()
	if got := tr.Len(); got != n {
		t.Fatalf("final quiescent Len = %d, want %d", got, n)
	}
}

// TestAdaptiveShardsBatchAndRange: ApplyBatch and the composed
// Range/Keys/Floor surface work across forced transitions.
func TestAdaptiveShardsBatchAndRange(t *testing.T) {
	const u = int64(1 << 10)
	tr, err := lockfreetrie.New(u, lockfreetrie.WithAdaptiveShards(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	ref := map[int64]bool{}
	for round := 0; round < 6; round++ {
		var ops []lockfreetrie.Op
		for i := 0; i < 50; i++ {
			k := rng.Int63n(u)
			kind := lockfreetrie.OpInsert
			if rng.Intn(3) == 0 {
				kind = lockfreetrie.OpDelete
			}
			ops = append(ops, lockfreetrie.Op{Kind: kind, Key: k})
		}
		if errs := tr.ApplyBatch(ops); errs != nil {
			t.Fatalf("ApplyBatch: %v", errs)
		}
		for _, op := range ops { // last op per key wins
			ref[op.Key] = op.Kind == lockfreetrie.OpInsert
		}
		if err := lockfreetrie.ForceResize(tr, []int{4, 8, 2, 1, 8, 2}[round]); err != nil {
			t.Fatal(err)
		}
		var want []int64
		for k := int64(0); k < u; k++ {
			if ref[k] {
				want = append(want, k)
			}
		}
		got, err := tr.Keys(0, u-1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: Keys len %d, want %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: Keys[%d] = %d, want %d", round, i, got[i], want[i])
			}
		}
	}
}

// TestRelaxedAdaptiveShards: the relaxed facade across forced
// transitions — exact at quiescence, stats wired, bounds validated.
func TestRelaxedAdaptiveShards(t *testing.T) {
	if _, err := lockfreetrie.NewRelaxed(1<<10, lockfreetrie.WithAdaptiveShards(3, 8)); err == nil {
		t.Error("non-power-of-two min accepted")
	}
	const u = int64(512)
	tr, err := lockfreetrie.NewRelaxed(u, lockfreetrie.WithAdaptiveShards(1, 16))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	ref := map[int64]bool{}
	for i := 0; i < 300; i++ {
		k := rng.Int63n(u)
		if rng.Intn(3) == 0 {
			tr.Delete(k)
			delete(ref, k)
		} else {
			tr.Insert(k)
			ref[k] = true
		}
	}
	for _, k := range []int{4, 16, 4, 1} {
		if err := lockfreetrie.ForceResizeRelaxed(tr, k); err != nil {
			t.Fatal(err)
		}
		if got := tr.Shards(); got != k {
			t.Fatalf("Shards = %d, want %d", got, k)
		}
		want := int64(-1)
		for x := int64(0); x < u; x++ {
			got, err := tr.Contains(x)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref[x] {
				t.Fatalf("k=%d: Contains(%d) = %v, want %v", k, x, got, ref[x])
			}
			p, ok, err := tr.Predecessor(x)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || p != want {
				t.Fatalf("k=%d: Predecessor(%d) = (%d, %v), want (%d, true)", k, x, p, ok, want)
			}
			if ref[x] {
				want = x
			}
		}
	}
	if st := tr.ResizeStats(); st.Grows != 2 || st.Shrinks != 2 {
		t.Fatalf("relaxed ResizeStats = %+v", st)
	}
	if !tr.AdaptiveShards() {
		t.Fatal("AdaptiveShards() = false")
	}
}
