package lockfreetrie

import (
	"fmt"

	"repro/internal/relaxed"
)

// Relaxed is the paper's §4 wait-free relaxed binary trie: updates and
// membership are strongly linearizable and wait-free (O(log u) worst-case
// steps), but Predecessor may abstain while concurrent updates interfere.
// It is the right structure when bounded per-operation work matters more
// than always-answering queries (e.g. real-time producers with a
// best-effort scanner). The full Trie builds on it.
type Relaxed struct {
	inner *relaxed.Trie
}

// NewRelaxed returns an empty relaxed trie over {0,…,universe−1} (same
// bounds as New).
func NewRelaxed(universe int64) (*Relaxed, error) {
	r, err := relaxed.New(universe)
	if err != nil {
		return nil, fmt.Errorf("lockfreetrie: %w", err)
	}
	return &Relaxed{inner: r}, nil
}

// Universe returns the padded universe size.
func (t *Relaxed) Universe() int64 { return t.inner.U() }

func (t *Relaxed) check(x int64) error {
	if x < 0 || x >= t.inner.U() {
		return &KeyRangeError{Key: x, Universe: t.inner.U()}
	}
	return nil
}

// Contains reports whether x is in the set. O(1) worst-case steps.
func (t *Relaxed) Contains(x int64) (bool, error) {
	if err := t.check(x); err != nil {
		return false, err
	}
	return t.inner.Search(x), nil
}

// Insert adds x to the set. Wait-free, O(log u) worst-case steps.
func (t *Relaxed) Insert(x int64) error {
	if err := t.check(x); err != nil {
		return err
	}
	t.inner.Insert(x)
	return nil
}

// Delete removes x from the set. Wait-free, O(log u) worst-case steps.
func (t *Relaxed) Delete(x int64) error {
	if err := t.check(x); err != nil {
		return err
	}
	t.inner.Delete(x)
	return nil
}

// Predecessor returns the largest key smaller than y. ok=false means the
// query abstained because concurrent updates on keys in (result, y)
// interfered; when every key in that range is quiescent the answer is exact
// (−1 for "no predecessor"). Wait-free, O(log u) worst-case steps.
func (t *Relaxed) Predecessor(y int64) (pred int64, ok bool, err error) {
	if err := t.check(y); err != nil {
		return -1, false, err
	}
	pred, ok = t.inner.Predecessor(y)
	return pred, ok, nil
}

// Successor returns the smallest key greater than y, with the mirrored
// abstention semantics of Predecessor (−1 means "no successor"). An
// extension beyond the paper. Wait-free, O(log u) worst-case steps.
func (t *Relaxed) Successor(y int64) (succ int64, ok bool, err error) {
	if err := t.check(y); err != nil {
		return -1, false, err
	}
	succ, ok = t.inner.Successor(y)
	return succ, ok, nil
}
