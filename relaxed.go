package lockfreetrie

import (
	"fmt"

	"repro/internal/combine"
	"repro/internal/relaxed"
	"repro/internal/resize"
	"repro/internal/sharded"
)

// relaxedSet is the backend contract shared by the unsharded relaxed trie
// and its sharded façade.
type relaxedSet interface {
	Search(x int64) bool
	Insert(x int64)
	Delete(x int64)
	Predecessor(y int64) (int64, bool)
	Successor(y int64) (int64, bool)
	Len() int64
	U() int64
}

// Relaxed is the paper's §4 wait-free relaxed binary trie: updates and
// membership are strongly linearizable and wait-free (O(log u) worst-case
// steps), but Predecessor may abstain while concurrent updates interfere.
// It is the right structure when bounded per-operation work matters more
// than always-answering queries (e.g. real-time producers with a
// best-effort scanner). The full Trie builds on it.
type Relaxed struct {
	set       relaxedSet
	shards    int
	adaptive  bool
	placement []int              // WithPlacementHint copy; nil when unplaced
	rz        *resize.RelaxedSet // non-nil under WithAdaptiveShards
}

// relaxedShardedFactory mirrors config.shardedFactory for the relaxed
// backends.
func relaxedShardedFactory(c *config, universe int64) func(k int) (*sharded.Relaxed, error) {
	o := sharded.Options{Combining: c.combining}
	if c.adaptive {
		acfg := c.acfg
		o.Adaptive = &acfg
	}
	if c.placementSet {
		o.Placement = c.placement
	}
	base := func(k int) (*sharded.Relaxed, error) { return sharded.NewRelaxedWithOptions(universe, k, o) }
	if !c.noCompress {
		return base
	}
	return func(k int) (*sharded.Relaxed, error) {
		t, err := base(k)
		if err != nil {
			return nil, err
		}
		for i := 0; i < t.Shards(); i++ {
			t.Shard(i).Bits().SetCompressedDescents(false)
		}
		return t, nil
	}
}

// NewRelaxed returns an empty relaxed trie over {0,…,universe−1} (same
// bounds as New). WithShards(k) partitions the universe across k
// independent relaxed tries under the same §4.1 contract — answers exact
// at quiescence, abstention only under interference — though under
// concurrent updates the sharded scan returns definite-but-inexact
// answers (a key present during the call that interference kept from
// being the true predecessor) in some cases where the unsharded trie
// would answer exactly or abstain. WithCombining routes updates through
// per-shard combiners; the relaxed trie has no announcement lists to
// amortize, so this trades the §4 per-op wait-freedom of batched updates
// for the combiner handoff and is only worth it under extreme same-range
// churn (see internal/combine.RelaxedSet). WithAdaptiveCombining makes
// that call per shard at runtime from the in-flight update count, with
// the same caveat.
func NewRelaxed(universe int64, opts ...Option) (*Relaxed, error) {
	cfg := config{shards: 1}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.validatePlacement(); err != nil {
		return nil, err
	}
	if cfg.dur != nil {
		return nil, fmt.Errorf("lockfreetrie: WithDurability is incompatible with NewRelaxed (no batch entrypoint to seed recovery through)")
	}
	if cfg.adaptiveShards {
		initial, err := cfg.resizeBounds()
		if err != nil {
			return nil, err
		}
		rz, err := resize.NewRelaxedSet(initial, relaxedShardedFactory(&cfg, universe),
			resize.Config{MinShards: cfg.minShards, MaxShards: cfg.maxShards})
		if err != nil {
			return nil, fmt.Errorf("lockfreetrie: %w", err)
		}
		return &Relaxed{set: rz, shards: initial, adaptive: cfg.adaptive, rz: rz}, nil
	}
	// Placement always routes through the sharded factory, as in New.
	if cfg.shards == 1 && !cfg.placementSet {
		r, err := relaxed.New(universe)
		if err != nil {
			return nil, fmt.Errorf("lockfreetrie: %w", err)
		}
		if cfg.noCompress {
			r.Bits().SetCompressedDescents(false)
		}
		var s relaxedSet
		if cfg.adaptive {
			s = combine.WrapRelaxedAdaptive(r, cfg.acfg, 0)
		} else {
			s = combine.WrapRelaxed(r, cfg.combining, 0)
		}
		return &Relaxed{set: s, shards: 1, adaptive: cfg.adaptive}, nil
	}
	st, err := relaxedShardedFactory(&cfg, universe)(cfg.shards)
	if err != nil {
		return nil, fmt.Errorf("lockfreetrie: %w", err)
	}
	return &Relaxed{set: st, shards: cfg.shards, adaptive: cfg.adaptive,
		placement: cfg.placement}, nil
}

// PlacementHint returns a copy of the WithPlacementHint owners slice, or
// nil when the trie is unplaced.
func (t *Relaxed) PlacementHint() []int {
	if t.placement == nil {
		return nil
	}
	return append([]int(nil), t.placement...)
}

// Universe returns the padded universe size.
func (t *Relaxed) Universe() int64 { return t.set.U() }

// Shards returns the current shard count: the configured value (1 for
// the unsharded trie), or — under WithAdaptiveShards — the live count,
// which a concurrent migration may change right after the read.
func (t *Relaxed) Shards() int {
	if t.rz != nil {
		return t.rz.Shards()
	}
	return t.shards
}

// AdaptiveShards reports whether WithAdaptiveShards was set.
func (t *Relaxed) AdaptiveShards() bool { return t.rz != nil }

// ResizeStats returns the online-resize counters, mirroring
// Trie.ResizeStats. Without WithAdaptiveShards it is a static snapshot.
func (t *Relaxed) ResizeStats() ResizeStats {
	if t.rz == nil {
		return ResizeStats{Shards: t.shards}
	}
	s := t.rz.Stats()
	return ResizeStats{Shards: s.Shards, Grows: s.Grows, Shrinks: s.Shrinks, Migrating: s.Migrating}
}

// AdaptiveCombining reports whether WithAdaptiveCombining was set.
func (t *Relaxed) AdaptiveCombining() bool { return t.adaptive }

// AdaptiveStats returns the cumulative mode-transition counts summed over
// all shards, mirroring Trie.AdaptiveStats. Zeros unless
// WithAdaptiveCombining was set.
func (t *Relaxed) AdaptiveStats() (enables, disables int64) {
	if a, ok := t.set.(adaptiveStats); ok {
		return a.AdaptiveStats()
	}
	return 0, 0
}

// Len returns the number of keys currently in the set, under the same
// weak-consistency contract as Trie.Len: exact at quiescence, off by at
// most the number of in-flight updates under concurrency. O(1) unsharded,
// O(shards) with WithShards.
func (t *Relaxed) Len() int64 { return t.set.Len() }

func (t *Relaxed) check(x int64) error {
	if x < 0 || x >= t.set.U() {
		return &KeyRangeError{Key: x, Universe: t.set.U()}
	}
	return nil
}

// Contains reports whether x is in the set. O(1) worst-case steps.
func (t *Relaxed) Contains(x int64) (bool, error) {
	if err := t.check(x); err != nil {
		return false, err
	}
	return t.set.Search(x), nil
}

// Insert adds x to the set. Wait-free, O(log u) worst-case steps.
func (t *Relaxed) Insert(x int64) error {
	if err := t.check(x); err != nil {
		return err
	}
	t.set.Insert(x)
	return nil
}

// Delete removes x from the set. Wait-free, O(log u) worst-case steps.
func (t *Relaxed) Delete(x int64) error {
	if err := t.check(x); err != nil {
		return err
	}
	t.set.Delete(x)
	return nil
}

// Predecessor returns the largest key smaller than y. ok=false means the
// query abstained because concurrent updates on keys in (result, y)
// interfered; when every key in that range is quiescent the answer is exact
// (−1 for "no predecessor"). Wait-free, O(log u) worst-case steps (plus
// O(shards) for the sharded variant).
func (t *Relaxed) Predecessor(y int64) (pred int64, ok bool, err error) {
	if err := t.check(y); err != nil {
		return -1, false, err
	}
	pred, ok = t.set.Predecessor(y)
	return pred, ok, nil
}

// Successor returns the smallest key greater than y, with the mirrored
// abstention semantics of Predecessor (−1 means "no successor"). An
// extension beyond the paper. Wait-free, O(log u) worst-case steps (plus
// O(shards) for the sharded variant).
func (t *Relaxed) Successor(y int64) (succ int64, ok bool, err error) {
	if err := t.check(y); err != nil {
		return -1, false, err
	}
	succ, ok = t.set.Successor(y)
	return succ, ok, nil
}
